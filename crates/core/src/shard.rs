//! Sharded relations: one logical relation hash-partitioned across
//! independent decomposition instances.
//!
//! The §5 lock placements make a single decomposition instance scale to
//! fine-grained locking, but every write still funnels through one root
//! node, whose lock (or stripe array) bounds multi-core write throughput.
//! A [`ShardedRelation`] removes that bound by partitioning the tuple
//! space across `N` complete [`ConcurrentRelation`] instances — each with
//! its own root, plan caches, and lock engine traffic — by a **seeded
//! hash of the canonical key columns** ([`RelationSchema::canonical_key`]):
//! a tuple lives in shard `h(π_key(t)) mod N`, so disjoint-key writes land
//! on disjoint roots and proceed with no shared state at all.
//!
//! # Routing
//!
//! An operation whose pattern binds every canonical-key column is
//! **routed**: it touches exactly one shard and costs the same as on a
//! single instance. Patterns that bind fewer columns (partial-pattern
//! queries, alternate-key removes) **fan out** across shards; single-shot
//! fan-out reads capture one snapshot timestamp from the process-global
//! commit clock and read every shard at it (see
//! [`ShardedRelation::read_transaction`]), so the combination is a single
//! consistent cut — serializable, with no locks taken. Reads inside a
//! [`ShardedRelation::transaction`] additionally lock every visited shard
//! (they observe the transaction's own uncommitted writes).
//!
//! The router hash is deliberately **decorrelated** from the hashes below
//! it ([`Tuple::stable_hash_of_seeded`] with the router's own seed): the
//! lock-stripe hash and the in-container bucket hashes see the same key
//! bits, and if the router's partition were a function of the same stream,
//! every relation shard's keys would collapse into a fraction of each
//! container's buckets/stripes one level down.
//!
//! # Cross-shard transactions
//!
//! [`ShardedRelation::transaction`] generalizes the single-instance
//! transaction layer: a [`ShardedTransaction`] lazily opens one
//! [`Transaction`] per touched shard, routes each operation, and holds
//! **every** shard's locks until the closure returns (the two-phase
//! discipline spans shards). Commit finishes each touched shard's engine;
//! any restart or abort replays *every* touched shard's undo segment
//! before a single lock is released, so an abort after ops on shards A and
//! B rolls both back atomically — no observer can see A's effects without
//! B's.
//!
//! Deadlock freedom extends the §5.1 argument lexicographically: the
//! global coordinate of a lock is `(shard index, lock token)`. A
//! transaction may block only while acquiring in its current **maximum**
//! shard; as soon as an operation returns to a lower-indexed shard, that
//! shard's engine is demoted to try-only acquisition
//! ([`relc_locks::TwoPhaseEngine::set_try_only`]) — on contention the
//! whole cross-shard transaction rolls back and retries with backoff
//! instead of blocking, so no wait-for cycle can form through two shards.
//!
//! # Example
//!
//! ```
//! use relc::{ShardedRelation, decomp, placement::LockPlacement};
//! use relc_containers::ContainerKind;
//! use relc_spec::Value;
//!
//! let d = decomp::library::split(ContainerKind::ConcurrentHashMap,
//!                                ContainerKind::HashMap);
//! let p = LockPlacement::fine(&d)?;
//! let graph = ShardedRelation::new(d.clone(), p, 8)?;
//!
//! let edge = |s: i64, t: i64| d.schema()
//!     .tuple(&[("src", Value::from(s)), ("dst", Value::from(t))]).unwrap();
//! let w = |w: i64| d.schema().tuple(&[("weight", Value::from(w))]).unwrap();
//!
//! assert!(graph.insert(&edge(1, 2), &w(100))?);
//! assert!(graph.insert(&edge(3, 4), &w(0))?);
//!
//! // Cross-shard transfer: both edges' shards stay locked until commit.
//! graph.transaction(|tx| {
//!     tx.update(&edge(1, 2), &w(70))?;
//!     tx.update(&edge(3, 4), &w(30))?;
//!     Ok(())
//! })?;
//! assert_eq!(graph.len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::BTreeSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use relc_locks::{Backoff, CommitStamp, LockStatsSnapshot, TwoPhaseEngine};
use relc_spec::{ColumnSet, RangePattern, RelationSchema, SpecError, Tuple};

use crate::decomp::Decomposition;
use crate::error::CoreError;
use crate::exec::{assemble_range_output, Executor};
use crate::mvcc::{self, MvccScope};
use crate::placement::{LockPlacement, LockToken};
use crate::relation::{ActiveTxnGuard, ConcurrentRelation, OpCounters, Repr, StatsSnapshot};
use crate::txn::{RedoOp, Transaction, TxnError};
use crate::wal::{self, RecoveryReport, Wal, WalOptions, WalRecord};

/// The router's default seed. Any value works — what matters is that the
/// routing hash stream is not the stripe/bucket stream (see the module
/// docs on decorrelation) — but it is fixed so shard assignment is
/// reproducible across runs.
const DEFAULT_ROUTER_SEED: u64 = 0x5bd1_e995_9d03_58c3;

/// One logical relation partitioned across independent decomposition
/// instances by a seeded hash of its canonical key columns. See the
/// [module docs](self).
pub struct ShardedRelation {
    shards: Vec<ConcurrentRelation>,
    route_by: ColumnSet,
    seed: u64,
    /// Seqlock-style generation for the sharded cutover: odd exactly
    /// while [`Self::migrate_to`] is swapping shard representations, even
    /// otherwise. Fan-out snapshot readers spin past odd values and
    /// re-validate after registering, so no reader ever captures a
    /// half-migrated mix of old and new shard trees.
    migration_epoch: AtomicU64,
    /// Top-level operation counters of the sharded flavor (the per-shard
    /// relations keep their own; these count calls on *this* surface).
    ops: OpCounters,
    /// Completed whole-relation [`Self::migrate_to`] cutovers.
    migrations: AtomicU64,
}

impl ShardedRelation {
    /// Synthesizes a relation partitioned over `shards` independent
    /// instances of the given (decomposition, placement) pair, routed by
    /// the schema's canonical key under the default router seed.
    /// `shards` is clamped to at least 1.
    ///
    /// # Errors
    ///
    /// As for [`ConcurrentRelation::new`].
    pub fn new(
        decomp: Arc<Decomposition>,
        placement: Arc<LockPlacement>,
        shards: usize,
    ) -> Result<Self, CoreError> {
        Self::with_seed(decomp, placement, shards, DEFAULT_ROUTER_SEED)
    }

    /// [`ShardedRelation::new`] with an explicit router seed (ablation
    /// and distribution tests; a production deployment has no reason to
    /// change it).
    ///
    /// # Errors
    ///
    /// As for [`ConcurrentRelation::new`].
    pub fn with_seed(
        decomp: Arc<Decomposition>,
        placement: Arc<LockPlacement>,
        shards: usize,
        seed: u64,
    ) -> Result<Self, CoreError> {
        let route_by = decomp.schema().canonical_key();
        // One snapshot registry shared by every shard: a cross-shard
        // reader registers once and establishes a single retirement
        // floor for the whole sharded relation (and only for it).
        let registry = relc_locks::SnapshotRegistry::new();
        let shards = (0..shards.max(1))
            .map(|_| {
                ConcurrentRelation::new_with_registry(
                    Arc::clone(&decomp),
                    Arc::clone(&placement),
                    Arc::clone(&registry),
                )
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedRelation {
            shards,
            route_by,
            seed,
            migration_epoch: AtomicU64::new(0),
            ops: OpCounters::default(),
            migrations: AtomicU64::new(0),
        })
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Arc<RelationSchema> {
        self.shards[0].schema()
    }

    /// The decomposition every shard is currently represented by. Owned:
    /// [`Self::migrate_to`] may install a different representation at any
    /// moment (see [`ConcurrentRelation::decomposition`]).
    pub fn decomposition(&self) -> Arc<Decomposition> {
        self.shards[0].decomposition()
    }

    /// The lock placement every shard currently runs under (owned, like
    /// [`Self::decomposition`]).
    pub fn placement(&self) -> Arc<LockPlacement> {
        self.shards[0].placement()
    }

    /// The columns the router partitions on (the schema's canonical key).
    pub fn route_by(&self) -> ColumnSet {
        self.route_by
    }

    /// Number of partitions.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The underlying per-shard relations (diagnostics and tests; tuples
    /// are owned by exactly the shard the router names).
    pub fn shards(&self) -> &[ConcurrentRelation] {
        &self.shards
    }

    /// The shard owning any tuple whose canonical-key projection equals
    /// `t`'s. `t` must bind every routing column (full tuples always do).
    pub fn shard_of(&self, t: &Tuple) -> usize {
        debug_assert!(self.route_by.is_subset(t.dom()));
        (t.stable_hash_of_seeded(self.route_by, self.seed) % self.shards.len() as u64) as usize
    }

    /// Routes a pattern: `Some(shard)` when it binds every routing
    /// column, `None` when the operation must fan out.
    fn route(&self, pattern: &Tuple) -> Option<usize> {
        if self.route_by.is_subset(pattern.dom()) {
            Some(self.shard_of(pattern))
        } else {
            None
        }
    }

    /// Number of tuples, summed over shards (same advisory-under-motion,
    /// exact-at-quiescence contract as [`ConcurrentRelation::len`]).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Whether the relation is empty (same caveat as [`Self::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lock statistics aggregated over every shard. A cross-shard
    /// transaction contributes one commit (or rollback) per shard it
    /// touched.
    pub fn lock_stats(&self) -> LockStatsSnapshot {
        let mut agg = LockStatsSnapshot::default();
        for s in self.shards.iter().map(|s| s.lock_stats()) {
            agg.acquisitions += s.acquisitions;
            agg.contended += s.contended;
            agg.restarts += s.restarts;
            agg.upgrades += s.upgrades;
            agg.speculation_failures += s.speculation_failures;
            agg.commits += s.commits;
            agg.user_rollbacks += s.user_rollbacks;
            agg.snapshot_reads += s.snapshot_reads;
        }
        agg
    }

    /// Captures the unified observability surface for the sharded flavor:
    /// lock counters aggregated over every shard, the process-global
    /// version and reclamation counters, this surface's own top-level
    /// operation counts, the summed tuple count, and the number of
    /// completed whole-relation migrations. The `locks`, `versions`, and
    /// `reclamation` fields agree with [`Self::lock_stats`],
    /// [`Self::version_stats`], and [`Self::reclamation_stats`] — they
    /// read the same counters.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            locks: self.lock_stats(),
            versions: relc_containers::version_stats(),
            reclamation: relc_containers::reclamation_stats(),
            ops: self.ops.snapshot(),
            len: self.len(),
            migrations: self.migration_count(),
        }
    }

    /// Number of completed [`Self::migrate_to`] cutovers (whole-relation
    /// cutovers, not per-shard swaps).
    pub fn migration_count(&self) -> u64 {
        self.migrations.load(Ordering::Relaxed)
    }

    /// Ablation knob (§5.2), forwarded to every shard.
    pub fn set_always_sort_locks(&self, v: bool) {
        for s in &self.shards {
            s.set_always_sort_locks(v);
        }
    }

    /// Epoch reclamation counters. The epoch domain is process-global
    /// (one collector spanning every shard and every other relation in
    /// the process), so there is nothing per-shard to aggregate; see
    /// [`ConcurrentRelation::reclamation_stats`].
    pub fn reclamation_stats(&self) -> relc_containers::ReclamationStats {
        relc_containers::reclamation_stats()
    }

    /// Test-only: drives the epoch collector to quiescence; see
    /// [`ConcurrentRelation::flush_reclamation`].
    pub fn flush_reclamation(&self) -> relc_containers::ReclamationStats {
        relc_containers::reclamation_flush()
    }

    /// `insert r s t` (§2): routed to the owning shard of the full tuple
    /// `s ∪ t`; put-if-absent semantics as on a single instance.
    ///
    /// # Errors
    ///
    /// As for [`ConcurrentRelation::insert`].
    pub fn insert(&self, s: &Tuple, t: &Tuple) -> Result<bool, CoreError> {
        OpCounters::bump(&self.ops.inserts, 1);
        match s.union(t) {
            // Not routable ⇒ not a full valuation (or overlapping
            // domains): any shard rejects it with the canonical §2 error
            // before applying an effect.
            Ok(x) => self.shards[self.route(&x).unwrap_or(0)].insert(s, t),
            Err(_) => self.shards[0].insert(s, t),
        }
    }

    /// The single shard every row of a batch routes to, if one exists.
    /// `None` when the batch spans shards or a row cannot be routed
    /// (invalid rows go through the cross-shard path, whose per-shard
    /// validation surfaces the canonical error).
    fn single_target_of_rows(&self, rows: &[(Tuple, Tuple)]) -> Option<usize> {
        let mut target = None;
        for (s, t) in rows {
            let i = match s.union(t) {
                Ok(x) => self.route(&x)?,
                Err(_) => return None,
            };
            if *target.get_or_insert(i) != i {
                return None;
            }
        }
        target
    }

    /// Batched `insert r s t` as **one cross-shard transaction**: the
    /// rows split per shard (equal keys route identically, so the §2
    /// fold semantics — duplicates lose to the first occurrence — are
    /// preserved), each shard runs its sub-batch through the PR 3 bulk
    /// sweep, and all shards commit together: observers see all of the
    /// batch or none of it.
    ///
    /// # Errors
    ///
    /// As for [`ConcurrentRelation::insert_all`]; any row's validation
    /// error rolls back every shard's sub-batch.
    pub fn insert_all(&self, rows: &[(Tuple, Tuple)]) -> Result<Vec<bool>, CoreError> {
        if rows.is_empty() {
            return Ok(Vec::new());
        }
        OpCounters::bump(&self.ops.batch_rows, rows.len() as u64);
        // The whole batch landing in one shard — always true for a 1-shard
        // relation, common for locality-batched loads — skips the
        // cross-shard machinery (N engines + guards per attempt, one row
        // clone per sub-batch) for the shard's own single-shot bulk path.
        if let Some(i) = self.single_target_of_rows(rows) {
            return self.shards[i].insert_all(rows);
        }
        self.run_transaction(|tx| tx.insert_all(rows))
    }

    /// Batched `remove r s` as one cross-shard transaction (see
    /// [`Self::insert_all`]); returns per-key outcomes like
    /// [`ConcurrentRelation::remove_all`].
    ///
    /// # Errors
    ///
    /// As for [`ConcurrentRelation::remove_all`]; the batch has no effect
    /// on error.
    pub fn remove_all(&self, keys: &[Tuple]) -> Result<Vec<bool>, CoreError> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        OpCounters::bump(&self.ops.batch_rows, keys.len() as u64);
        // Single-destination fast path, as in [`Self::insert_all`].
        let mut target = None;
        if keys
            .iter()
            .all(|k| self.route(k).is_some_and(|i| *target.get_or_insert(i) == i))
        {
            if let Some(i) = target {
                return self.shards[i].remove_all(keys);
            }
        }
        self.run_transaction(|tx| tx.remove_all(keys))
    }

    /// `remove r s` (§2); returns how many tuples were removed (0 or 1).
    ///
    /// # Errors
    ///
    /// As for [`ConcurrentRelation::remove`].
    pub fn remove(&self, s: &Tuple) -> Result<usize, CoreError> {
        Ok(usize::from(self.remove_returning(s)?.is_some()))
    }

    /// Like [`Self::remove`], but returns the removed tuple. Keys binding
    /// the routing columns touch one shard; alternate keys (a key set
    /// that does not contain the canonical key) search shard by shard
    /// inside one cross-shard transaction.
    ///
    /// # Errors
    ///
    /// As for [`ConcurrentRelation::remove_returning`].
    pub fn remove_returning(&self, s: &Tuple) -> Result<Option<Tuple>, CoreError> {
        OpCounters::bump(&self.ops.removes, 1);
        match self.route(s) {
            Some(i) => self.shards[i].remove_returning(s),
            None if !self.schema().is_key(s.dom()) => self.shards[0].remove_returning(s),
            None => self.run_transaction(|tx| tx.remove_returning(s)),
        }
    }

    /// `update r s t` (§2): routed when `s` binds the routing columns
    /// (an in-shard update can never change a tuple's shard, since `t`
    /// must be disjoint from `dom s ⊇` the routing columns); alternate-key
    /// updates run as a cross-shard transaction that relocates the tuple
    /// if `t` rewrites a routing column.
    ///
    /// # Errors
    ///
    /// As for [`ConcurrentRelation::update`].
    pub fn update(&self, s: &Tuple, t: &Tuple) -> Result<Option<Tuple>, CoreError> {
        OpCounters::bump(&self.ops.updates, 1);
        match self.route(s) {
            Some(i) => self.shards[i].update(s, t),
            None => self.run_transaction(|tx| tx.update(s, t)),
        }
    }

    /// `query r s C` (§2), lock-free at one snapshot timestamp: routed
    /// patterns read one shard; fan-out patterns read **every shard at
    /// the same snapshot** — since the MVCC layer landed, the commit
    /// clock is process-global, so a single registered timestamp is one
    /// consistent cut across all shards and the combined result is
    /// serializable (the former weakly-consistent shard-by-shard fan-out
    /// is gone).
    ///
    /// # Errors
    ///
    /// As for [`ConcurrentRelation::query`].
    pub fn query(&self, s: &Tuple, cols: ColumnSet) -> Result<Vec<Tuple>, CoreError> {
        OpCounters::bump(&self.ops.queries, 1);
        match self.route(s) {
            Some(i) => self.shards[i].query(s, cols),
            None => self.run_read(|snap| snap.query(s, cols)),
        }
    }

    /// Range query, lock-free at one snapshot timestamp: routed patterns
    /// read one shard, fan-out patterns read every shard at the same
    /// snapshot and merge (see [`ShardedSnapshotReader::query_range`]).
    ///
    /// # Errors
    ///
    /// As for [`ConcurrentRelation::query_range`].
    pub fn query_range(
        &self,
        s: &Tuple,
        range: &RangePattern,
        cols: ColumnSet,
    ) -> Result<Vec<Tuple>, CoreError> {
        OpCounters::bump(&self.ops.range_queries, 1);
        self.run_read(|snap| snap.query_range(s, range, cols))
    }

    /// Whether any tuple extends `s`; fan-out patterns short-circuit at
    /// the first shard with a witness, all shards probed at one snapshot
    /// timestamp (consistent across shards, like [`Self::query`]).
    ///
    /// # Errors
    ///
    /// As for [`ConcurrentRelation::contains`].
    pub fn contains(&self, s: &Tuple) -> Result<bool, CoreError> {
        OpCounters::bump(&self.ops.contains_checks, 1);
        match self.route(s) {
            Some(i) => self.shards[i].contains(s),
            None => self.run_read(|snap| snap.contains(s)),
        }
    }

    /// All tuples, sorted and deduplicated across shards — one consistent
    /// snapshot even under concurrent mutation (see [`Self::query`]).
    ///
    /// # Errors
    ///
    /// As for [`Self::query`].
    pub fn snapshot(&self) -> Result<Vec<Tuple>, CoreError> {
        OpCounters::bump(&self.ops.queries, 1);
        self.run_read(|snap| snap.snapshot())
    }

    /// Runs a lock-free read-only transaction spanning every shard: the
    /// closure's [`ShardedSnapshotReader`] captures **one** commit
    /// timestamp and resolves every read on every shard against it. The
    /// commit clock is process-global and cross-shard writers stamp all
    /// their shards' versions with a single shared stamp before any lock
    /// is released, so that one timestamp is a consistent cut: no read
    /// can see shard A's half of a cross-shard transaction without
    /// shard B's.
    ///
    /// Same contract as [`ConcurrentRelation::read_transaction`]: no
    /// locks, no restarts, writers never blocked.
    ///
    /// # Panics
    ///
    /// Panics if called on a thread already inside a transaction on this
    /// relation (same re-entrancy diagnosis as the locked operations).
    pub fn read_transaction<R>(&self, f: impl FnOnce(&ShardedSnapshotReader<'_>) -> R) -> R {
        OpCounters::bump(&self.ops.read_transactions, 1);
        self.run_read(f)
    }

    /// The snapshot-reader scope shared by [`Self::read_transaction`] and
    /// the fan-out single-shot reads (which keep their own operation
    /// counters instead of counting as read transactions).
    fn run_read<R>(&self, f: impl FnOnce(&ShardedSnapshotReader<'_>) -> R) -> R {
        let _guards: Vec<ActiveTxnGuard> = self
            .shards
            .iter()
            .map(|s| ActiveTxnGuard::enter(s.relation_id()))
            .collect();
        let reader = ShardedSnapshotReader::open(self);
        f(&reader)
    }

    /// Process-global version-chain counters; like
    /// [`Self::reclamation_stats`], there is nothing per-shard to
    /// aggregate.
    pub fn version_stats(&self) -> relc_containers::VersionStats {
        relc_containers::version_stats()
    }

    /// Structural verification of every quiescent shard instance, plus
    /// the sharding invariant: each tuple lives in exactly the shard the
    /// router names. Returns the union of the shards' contents.
    ///
    /// # Errors
    ///
    /// A description of the violated invariant.
    pub fn verify(&self) -> Result<BTreeSet<Tuple>, String> {
        let mut all = BTreeSet::new();
        for (i, shard) in self.shards.iter().enumerate() {
            for t in shard.verify().map_err(|e| format!("shard {i}: {e}"))? {
                let want = self.shard_of(&t);
                if want != i {
                    return Err(format!(
                        "misrouted tuple: shard {i} holds a tuple the router places in shard {want}"
                    ));
                }
                all.insert(t);
            }
        }
        Ok(all)
    }

    /// Live migration of the whole sharded relation to a new
    /// `(decomposition, placement)` pair — the sharded generalization of
    /// [`ConcurrentRelation::migrate_to`], run as **one cross-shard
    /// cutover** so fan-out readers never observe a half-migrated mix of
    /// representations.
    ///
    /// The protocol extends the single-instance fence shard by shard:
    ///
    /// 1. **Fence every shard, in ascending shard order.** Each shard's
    ///    migration fence (every stripe of every root-hosted edge, held
    ///    exclusively) is acquired with that shard's own engine; ascending
    ///    order matches the cross-shard `(shard, token)` acquisition order,
    ///    so the fence cannot deadlock against a cross-shard transaction —
    ///    a transaction blocked against a fenced shard either waits in its
    ///    maximum shard or fails its try-only acquisition and restarts. A
    ///    contended fence rolls back **all** shards' fences and retries
    ///    with backoff.
    /// 2. **One cut.** With every fence held, no writer on any shard is in
    ///    flight and none can commit: the whole relation is frozen. Each
    ///    shard's contents are read at an MVCC cut and bulk-loaded into
    ///    that shard's fresh tree (the new trees are private until the
    ///    swap, so the loads contend with nobody).
    /// 3. **Swap window.** The migration epoch goes odd, every shard's
    ///    representation is swapped, the epoch goes even. Fan-out snapshot
    ///    readers spin past the odd window and re-validate their captured
    ///    representations after registering, so every reader holds either
    ///    all-old or all-new trees — and either set is the same frozen cut
    ///    while any fence is held, so even a reader that raced the window
    ///    reads one consistent snapshot.
    /// 4. **Release.** Every fence releases; writers resume on the new
    ///    trees. Writers that captured an old representation fail the
    ///    commit-time representation check and retry.
    ///
    /// # Errors
    ///
    /// As for [`ConcurrentRelation::migrate_to`]; on error the relation is
    /// left on the old representation, unchanged.
    ///
    /// # Panics
    ///
    /// Panics if called from inside a transaction on this relation (the
    /// same re-entrancy diagnosis as every other entry point).
    pub fn migrate_to(
        &self,
        decomp: Arc<Decomposition>,
        placement: Arc<LockPlacement>,
    ) -> Result<(), CoreError> {
        if decomp.schema() != self.schema() {
            return Err(CoreError::IllFormedPlacement(
                "migration target has a different schema".into(),
            ));
        }
        let _guards: Vec<ActiveTxnGuard> = self
            .shards
            .iter()
            .map(|s| ActiveTxnGuard::enter(s.relation_id()))
            .collect();
        // One fresh (empty, still private) representation per shard;
        // built before fencing so placement validation fails fast.
        let new_reprs: Vec<Arc<Repr>> = self
            .shards
            .iter()
            .map(|_| Repr::new(Arc::clone(&decomp), Arc::clone(&placement)))
            .collect::<Result<_, _>>()?;
        let mut engines: Vec<TwoPhaseEngine<LockToken>> = self
            .shards
            .iter()
            .map(|s| TwoPhaseEngine::new(Arc::clone(s.stats_arc())))
            .collect();
        let mut backoff = Backoff::new();
        loop {
            let reprs: Vec<Arc<Repr>> = self.shards.iter().map(|s| s.current_repr()).collect();
            // Ascending shard order (see the deadlock argument above).
            let mut fenced = true;
            for i in 0..self.shards.len() {
                let fence = {
                    let mut exec =
                        Executor::new(&reprs[i].decomp, &reprs[i].placement, &mut engines[i]);
                    exec.always_sort_locks = self.shards[i].always_sort_locks();
                    exec.acquire_migration_fence(&reprs[i].root)
                };
                if fence.is_err() {
                    fenced = false;
                    break;
                }
            }
            if !fenced {
                for engine in &mut engines {
                    engine.rollback();
                }
                backoff.wait();
                continue;
            }
            // Every fence held: the whole relation is frozen at one cut.
            for (i, shard) in self.shards.iter().enumerate() {
                match shard.load_frozen_contents(&reprs[i], &new_reprs[i]) {
                    Ok(rows) => debug_assert_eq!(rows, shard.len(), "quiescent cut must be exact"),
                    Err(e) => {
                        for engine in &mut engines {
                            engine.rollback();
                        }
                        return Err(e);
                    }
                }
            }
            // Swap window: odd epoch keeps fan-out readers from capturing
            // a mixed representation set while the per-shard swaps land.
            self.migration_epoch.fetch_add(1, Ordering::AcqRel);
            for (shard, new_repr) in self.shards.iter().zip(new_reprs) {
                shard.install_repr(new_repr);
            }
            self.migration_epoch.fetch_add(1, Ordering::AcqRel);
            self.migrations.fetch_add(1, Ordering::Relaxed);
            for engine in &mut engines {
                engine.finish();
            }
            return Ok(());
        }
    }

    /// Runs `f` as one two-phase transaction spanning every shard it
    /// touches: per-shard [`Transaction`]s open lazily as operations
    /// route, all locks across all touched shards are held until the
    /// closure returns, and commit/rollback is atomic across shards
    /// (every shard's undo segment replays before any lock is released).
    /// See the [module docs](self) for the cross-shard ordering protocol.
    ///
    /// The closure contract is exactly
    /// [`ConcurrentRelation::transaction`]'s: propagate [`TxnError`] with
    /// `?`, return `Err(tx.abort(..))` to roll back, expect re-runs on
    /// contention, and route every operation on this relation through the
    /// transaction handle (single-shot calls inside the closure panic
    /// rather than self-deadlock).
    ///
    /// # Errors
    ///
    /// Whatever [`TxnError::Core`] error the closure propagates;
    /// restarts are consumed by the retry loop.
    pub fn transaction<R>(
        &self,
        f: impl FnMut(&mut ShardedTransaction<'_>) -> Result<R, TxnError>,
    ) -> Result<R, CoreError> {
        OpCounters::bump(&self.ops.transactions, 1);
        self.run_transaction(f)
    }

    /// The cross-shard transaction loop shared by [`Self::transaction`]
    /// and the fan-out single-shot sugar (which keeps its own operation
    /// counters, exactly like the single-instance layer).
    fn run_transaction<R>(
        &self,
        mut f: impl FnMut(&mut ShardedTransaction<'_>) -> Result<R, TxnError>,
    ) -> Result<R, CoreError> {
        // Re-entrancy guards for every shard: a single-shot operation on
        // this relation (or directly on a shard) inside the closure would
        // open a second engine against locks this transaction holds.
        let _guards: Vec<ActiveTxnGuard> = self
            .shards
            .iter()
            .map(|s| ActiveTxnGuard::enter(s.relation_id()))
            .collect();
        let mut engines: Vec<TwoPhaseEngine<LockToken>> = self
            .shards
            .iter()
            .map(|s| TwoPhaseEngine::new(Arc::clone(s.stats_arc())))
            .collect();
        let mut backoff = Backoff::new();
        loop {
            // Pin every shard's representation for this attempt (same
            // stale-window discipline as the single-instance loop: a
            // migration completing mid-attempt fails the commit-time
            // check below, and the attempt rolls back and re-runs on the
            // new trees).
            let reprs: Vec<Arc<Repr>> = self.shards.iter().map(|s| s.current_repr()).collect();
            let mut stx =
                ShardedTransaction::new(self, &reprs, engines.iter_mut().map(Some).collect());
            match f(&mut stx) {
                Ok(r)
                    if !stx.needs_restart()
                        && reprs
                            .iter()
                            .zip(&self.shards)
                            .all(|(r, s)| Arc::ptr_eq(r, &s.current_repr())) =>
                {
                    // Commit: publish every shard's len delta while all
                    // locks are still held, stamp the shared commit
                    // timestamp over *all* shards' version journals (one
                    // stamp per attempt ⇒ readers see the cross-shard
                    // transaction atomically), then release shard by
                    // shard.
                    let (touched, scopes, redos) = stx.into_touched(false);
                    for &(i, delta) in &touched {
                        self.shards[i].apply_len_delta(delta);
                    }
                    // Per-shard WAL records for every writing shard. The
                    // shards of one relation either all have a WAL or
                    // none does.
                    let writers: Vec<(usize, Vec<u8>)> = if self.shards[0].has_wal() {
                        touched
                            .iter()
                            .zip(&redos)
                            .filter(|(_, redo)| !redo.is_empty())
                            .map(|(&(i, _), redo)| (i, wal::encode_ops(redo)))
                            .collect()
                    } else {
                        Vec::new()
                    };
                    if writers.is_empty() {
                        Self::stamp_scopes(&reprs, self.shards[0].snapshots(), &touched, &scopes);
                        for (i, _) in touched {
                            engines[i].finish();
                        }
                        return Ok(r);
                    }
                    // Writes on >1 shard need the marker protocol: each
                    // data record is flagged, and recovery applies them
                    // only if the shared timestamp's marker is durable.
                    let cross = writers.len() > 1;
                    // Every involved log's order lock, ascending shard
                    // order (the same global order every committer uses,
                    // so no deadlock), held across the one shared
                    // clock.commit and all appends: each log's record
                    // sequence stays in timestamp order.
                    let order_guards: Vec<_> = writers
                        .iter()
                        .map(|&(i, _)| self.shards[i].wal().expect("checked").lock_order())
                        .collect();
                    let mut seqs: Vec<(usize, u64)> = Vec::new();
                    let mut committed_ts = 0u64;
                    Self::stamp_scopes_with(
                        &reprs,
                        self.shards[0].snapshots(),
                        &touched,
                        &scopes,
                        |ts| {
                            for (i, bytes) in &writers {
                                let shard_wal = self.shards[*i].wal().expect("checked");
                                seqs.push((*i, shard_wal.append_commit(ts, cross, bytes)));
                                shard_wal.raise_applied_through(ts);
                            }
                            committed_ts = ts;
                            drop(order_guards);
                        },
                    );
                    // Every writing attempt waits for durability *before*
                    // any lock releases — single-shard ones too. Per-log
                    // durability is prefix-closed, but a sharded relation
                    // has one log per shard and prefix-closure says
                    // nothing about *cross*-log dependencies: if this
                    // attempt released its locks first, a later
                    // transaction could read these effects, become
                    // durable in a *different* shard's log, and survive a
                    // crash that loses this attempt's record — recovery
                    // would replay the dependent without its antecedent.
                    // Holding the locks until the records are durable
                    // means any observer of these effects commits
                    // strictly after they can no longer vanish. The
                    // marker appends last, strictly after every data
                    // record is durable: a durable marker *implies*
                    // durable data records on every shard (atomic
                    // commit), an absent marker aborts them all (atomic
                    // abort).
                    let durability: Result<(), CoreError> = (|| {
                        for &(i, seq) in &seqs {
                            self.shards[i].wal().expect("checked").wait_durable(seq)?;
                        }
                        if cross {
                            let w0 = self.shards[0].wal().expect("checked");
                            let mseq = w0.append_marker(committed_ts);
                            w0.wait_durable(mseq)?;
                        }
                        Ok(())
                    })();
                    for &(i, _) in &touched {
                        engines[i].finish();
                    }
                    // On a durability error the attempt has already
                    // published in memory (see the `transaction` docs on
                    // what `CoreError::Durability` means here).
                    durability?;
                    return Ok(r);
                }
                // A swallowed restart must not commit (same enforcement
                // as the single-instance loop); this arm also rolls back
                // an attempt whose representation set was swapped out by
                // a live migration mid-flight.
                Ok(_) | Err(TxnError::Restart(_)) => {
                    let (touched, scopes, _) = stx.into_touched(true);
                    Self::stamp_scopes(&reprs, self.shards[0].snapshots(), &touched, &scopes);
                    for (i, _) in touched {
                        engines[i].rollback();
                    }
                    backoff.wait();
                }
                Err(TxnError::Core(e)) => {
                    let (touched, scopes, _) = stx.into_touched(true);
                    Self::stamp_scopes(&reprs, self.shards[0].snapshots(), &touched, &scopes);
                    let user = matches!(e, CoreError::TransactionAborted(_));
                    for (i, _) in touched {
                        if user {
                            engines[i].rollback_user();
                        } else {
                            engines[i].rollback();
                        }
                    }
                    return Err(e);
                }
            }
        }
    }

    /// Stamps and retires one attempt's MVCC scopes, each under the
    /// placement of the representation it was journaled against —
    /// `touched` and `scopes` are aligned (both in ascending order of
    /// touched shard index).
    fn stamp_scopes(
        reprs: &[Arc<Repr>],
        registry: &relc_locks::SnapshotRegistry,
        touched: &[(usize, isize)],
        scopes: &[MvccScope],
    ) {
        let paired: Vec<(&LockPlacement, &MvccScope)> = touched
            .iter()
            .zip(scopes)
            .map(|(&(i, _), scope)| (&*reprs[i].placement, scope))
            .collect();
        mvcc::finish_attempt_mixed(registry, &paired);
    }

    /// [`Self::stamp_scopes`] with a publish hook: `publish(ts)` runs at
    /// the commit timestamp, after [`CommitClock::commit`] has published
    /// it to readers but still inside the committer's log-order critical
    /// section — callers hold every involved log's order lock across the
    /// commit *and* the appends, and that lock (not pre-visibility) is
    /// what guarantees log order matches timestamp order.
    ///
    /// [`CommitClock::commit`]: relc_locks::CommitClock::commit
    fn stamp_scopes_with(
        reprs: &[Arc<Repr>],
        registry: &relc_locks::SnapshotRegistry,
        touched: &[(usize, isize)],
        scopes: &[MvccScope],
        publish: impl FnOnce(u64),
    ) {
        let paired: Vec<(&LockPlacement, &MvccScope)> = touched
            .iter()
            .zip(scopes)
            .map(|(&(i, _), scope)| (&*reprs[i].placement, scope))
            .collect();
        mvcc::finish_attempt_mixed_with(registry, &paired, publish);
    }

    /// Opens a **durable** sharded relation backed by one write-ahead log
    /// per shard in `dir` (created if absent): `shard-<i>.wal` /
    /// `shard-<i>.ckpt`. Recovery replays each shard's checkpoint and log
    /// tail; a record flagged cross-shard applies only if shard 0's log
    /// holds a durable commit **marker** for its timestamp, so a crash
    /// between two shards' fsyncs aborts the whole transaction on every
    /// shard (atomic cross-shard recovery). The commit clock resumes
    /// strictly above the highest replayed stamp of any shard.
    ///
    /// # Errors
    ///
    /// Any I/O error, a corrupt checkpoint, or the usual construction
    /// errors of [`Self::new`].
    pub fn open_durable(
        decomp: Arc<Decomposition>,
        placement: Arc<LockPlacement>,
        shards: usize,
        dir: impl AsRef<std::path::Path>,
        opts: WalOptions,
    ) -> Result<(Self, RecoveryReport), CoreError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)
            .map_err(|e| CoreError::Durability(format!("create {}: {e}", dir.display())))?;
        let mut rel = Self::with_seed(decomp, placement, shards, DEFAULT_ROUTER_SEED)?;
        let wals: Vec<Wal> = (0..rel.shards.len())
            .map(|i| {
                Wal::open(
                    dir.join(format!("shard-{i}.wal")),
                    dir.join(format!("shard-{i}.ckpt")),
                    opts,
                )
            })
            .collect::<Result<_, _>>()?;
        // The marker set lives in shard 0's log: a cross-shard record on
        // any shard commits iff its timestamp's marker reached disk.
        let markers: BTreeSet<u64> = wals[0]
            .read_records()?
            .0
            .iter()
            .filter_map(|r| match r {
                WalRecord::Marker { ts } => Some(*ts),
                WalRecord::Commit { .. } => None,
            })
            .collect();
        let mut report = RecoveryReport::default();
        for (shard, shard_wal) in rel.shards.iter().zip(&wals) {
            let shard_report = shard.recover_from(shard_wal, Some(&markers))?;
            report.merge(&shard_report);
        }
        for (shard, shard_wal) in rel.shards.iter_mut().zip(wals) {
            shard.attach_wal(Arc::new(shard_wal));
        }
        Ok((rel, report))
    }

    /// Checkpoints every shard at **one** MVCC cut: acquires all shards'
    /// migration write fences in ascending order (the same frozen state
    /// [`Self::migrate_to`] snapshots), writes each shard's frozen rows to
    /// its checkpoint sidecar at a single cut timestamp, then truncates
    /// the logs — shard 0's **last**, because it holds the cross-shard
    /// commit markers: a crash after truncating shard 0 but before shard
    /// `i > 0` would otherwise strand cross-shard records whose markers
    /// are gone, silently aborting committed transactions. With the
    /// marker log truncated last, any stranded cross-shard record's
    /// marker is still present (or the record's shard was already
    /// checkpointed past it). Returns the total rows snapshotted.
    ///
    /// # Errors
    ///
    /// [`CoreError::Durability`] if the relation was not opened with
    /// [`Self::open_durable`], or any checkpoint I/O error.
    ///
    /// # Panics
    ///
    /// Panics if called from inside a transaction on this relation.
    pub fn checkpoint(&self) -> Result<usize, CoreError> {
        if !self.shards[0].has_wal() {
            return Err(CoreError::Durability(
                "relation has no write-ahead log".into(),
            ));
        }
        let _guards: Vec<ActiveTxnGuard> = self
            .shards
            .iter()
            .map(|s| ActiveTxnGuard::enter(s.relation_id()))
            .collect();
        let mut engines: Vec<TwoPhaseEngine<LockToken>> = self
            .shards
            .iter()
            .map(|s| TwoPhaseEngine::new(Arc::clone(s.stats_arc())))
            .collect();
        let mut backoff = Backoff::new();
        loop {
            let reprs: Vec<Arc<Repr>> = self.shards.iter().map(|s| s.current_repr()).collect();
            let mut fenced = true;
            for i in 0..self.shards.len() {
                let fence = {
                    let mut exec =
                        Executor::new(&reprs[i].decomp, &reprs[i].placement, &mut engines[i]);
                    exec.always_sort_locks = self.shards[i].always_sort_locks();
                    exec.acquire_migration_fence(&reprs[i].root)
                };
                if fence.is_err() {
                    fenced = false;
                    break;
                }
            }
            if !fenced {
                for engine in &mut engines {
                    engine.rollback();
                }
                backoff.wait();
                continue;
            }
            // Every fence held: one quiescent cut across all shards.
            let cut_ts = relc_locks::commit_clock().now();
            let result = (|| {
                let mut total = 0usize;
                // Phase 1: every shard's snapshot sidecar reaches disk
                // before any log shrinks — a crash mid-phase leaves all
                // logs intact and recovery keyed on each sidecar's floor.
                for (shard, repr) in self.shards.iter().zip(&reprs) {
                    let rows = shard.frozen_rows(repr)?;
                    let shard_wal = shard.wal().expect("checked");
                    shard_wal.write_snapshot(cut_ts, &rows)?;
                    total += rows.len();
                }
                // Phase 2: truncate, shard 0 (the marker log) last.
                for shard in self.shards.iter().rev() {
                    shard.wal().expect("checked").truncate_log()?;
                }
                Ok(total)
            })();
            match result {
                Ok(total) => {
                    for engine in &mut engines {
                        engine.finish();
                    }
                    return Ok(total);
                }
                Err(e) => {
                    for engine in &mut engines {
                        engine.rollback();
                    }
                    return Err(e);
                }
            }
        }
    }

    /// Aggregated group-commit statistics across all shards' logs
    /// (appends/flushes/fsyncs summed, `max_batch` the maximum), or
    /// `None` if the relation has no WAL.
    pub fn wal_stats(&self) -> Option<relc_locks::GroupCommitStats> {
        if !self.shards[0].has_wal() {
            return None;
        }
        let mut agg = relc_locks::GroupCommitStats::default();
        for shard in &self.shards {
            let s = shard.wal_stats()?;
            agg.appends += s.appends;
            agg.flushes += s.flushes;
            agg.fsyncs += s.fsyncs;
            agg.max_batch = agg.max_batch.max(s.max_batch);
        }
        Some(agg)
    }
}

impl fmt::Debug for ShardedRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedRelation")
            .field("decomposition", &self.decomposition().describe())
            .field("shards", &self.shards.len())
            .field(
                "route_by",
                &self.schema().catalog().render_set(self.route_by),
            )
            .field("len", &self.len())
            .finish()
    }
}

/// An open cross-shard transaction on a [`ShardedRelation`]. Created by
/// [`ShardedRelation::transaction`]; operations route exactly as the
/// relation's single-shot operations do, but all locks of every touched
/// shard accumulate until the closure returns.
pub struct ShardedTransaction<'t> {
    rel: &'t ShardedRelation,
    /// The per-shard representations pinned for this attempt (captured
    /// once in the retry loop; the commit path refuses to commit if any
    /// shard's representation was swapped by a live migration since).
    reprs: &'t [Arc<Repr>],
    /// One engine slot per shard; taken (moved into the shard's
    /// [`Transaction`]) when the shard is first touched.
    engines: Vec<Option<&'t mut TwoPhaseEngine<LockToken>>>,
    open: Vec<Option<Transaction<'t>>>,
    /// Highest shard index touched so far: acquisitions there may block,
    /// anything lower is demoted to try-only (global (shard, token)
    /// order — see the module docs).
    max_open: Option<usize>,
    /// One commit stamp shared by every shard's MVCC write journal:
    /// snapshot readers see the cross-shard attempt commit (or roll
    /// back) as a single timestamp, never one shard's effects without
    /// another's.
    stamp: Arc<CommitStamp>,
}

impl<'t> ShardedTransaction<'t> {
    fn new(
        rel: &'t ShardedRelation,
        reprs: &'t [Arc<Repr>],
        engines: Vec<Option<&'t mut TwoPhaseEngine<LockToken>>>,
    ) -> Self {
        let n = engines.len();
        ShardedTransaction {
            rel,
            reprs,
            engines,
            open: (0..n).map(|_| None).collect(),
            max_open: None,
            stamp: CommitStamp::new(),
        }
    }

    /// The relation this transaction operates on (metadata access only,
    /// as for [`Transaction::relation`]).
    pub fn relation(&self) -> &'t ShardedRelation {
        self.rel
    }

    /// The open per-shard transaction for shard `i`, created on first
    /// touch. Maintains the cross-shard acquisition order: returning to a
    /// shard below the current maximum demotes that shard's engine to
    /// try-only for the rest of the attempt.
    fn shard_tx(&mut self, i: usize) -> &mut Transaction<'t> {
        if self.open[i].is_none() {
            let engine = self.engines[i]
                .take()
                .expect("engine slot taken exactly once per attempt");
            let shard = &self.rel.shards[i];
            let repr = &self.reprs[i];
            let mut exec = Executor::new(&repr.decomp, &repr.placement, engine);
            exec.always_sort_locks = shard.always_sort_locks();
            let mut tx = Transaction::new(shard, repr, exec, false);
            // All shards write versions under the attempt's shared stamp
            // (injected before any mirrored write can happen).
            tx.set_mvcc_stamp(Arc::clone(&self.stamp));
            self.open[i] = Some(tx);
        }
        let tx = self.open[i].as_mut().expect("just ensured open");
        match self.max_open {
            Some(m) if i < m => tx.force_try_locks(),
            Some(m) if m < i => self.max_open = Some(i),
            None => self.max_open = Some(i),
            _ => {}
        }
        tx
    }

    /// Whether any touched shard demanded a restart; the commit path
    /// refuses to commit in that case, exactly like the single-instance
    /// loop.
    fn needs_restart(&self) -> bool {
        self.open.iter().flatten().any(|tx| tx.needs_restart())
    }

    /// Consumes the attempt: optionally rolls back every touched shard's
    /// undo segment (all while every lock of every shard is still held),
    /// and returns the touched shard indices with their len deltas plus
    /// every touched shard's MVCC scope (taken *after* any rollback, so
    /// compensation versions are journaled too) and its redo stream
    /// (empty unless the shard has a WAL; rollback clears it). The
    /// caller stamps the scopes through [`mvcc::finish_attempt`] and
    /// releases the engines afterwards.
    #[allow(clippy::type_complexity)]
    fn into_touched(
        self,
        rollback: bool,
    ) -> (Vec<(usize, isize)>, Vec<MvccScope>, Vec<Vec<RedoOp>>) {
        let mut touched = Vec::new();
        let mut scopes = Vec::new();
        let mut redos = Vec::new();
        for (i, slot) in self.open.into_iter().enumerate() {
            if let Some(mut tx) = slot {
                if rollback {
                    tx.rollback_effects();
                }
                touched.push((i, tx.len_delta()));
                redos.push(tx.take_redo());
                scopes.push(tx.take_mvcc());
            }
        }
        (touched, scopes, redos)
    }

    /// `insert r s t` (§2) under this transaction's lock scope, routed to
    /// the owning shard.
    ///
    /// # Errors
    ///
    /// As for [`Transaction::insert`].
    pub fn insert(&mut self, s: &Tuple, t: &Tuple) -> Result<bool, TxnError> {
        let i = match s.union(t) {
            Ok(x) => self.rel.route(&x).unwrap_or(0),
            Err(_) => 0, // canonical validation error from shard 0
        };
        self.shard_tx(i).insert(s, t)
    }

    /// Batched insert under this transaction's lock scope: rows split per
    /// shard (preserving relative order, which preserves the §2 fold
    /// semantics — equal keys route identically), one bulk sub-batch per
    /// touched shard in ascending shard order.
    ///
    /// # Errors
    ///
    /// As for [`Transaction::insert_all`].
    pub fn insert_all(&mut self, rows: &[(Tuple, Tuple)]) -> Result<Vec<bool>, TxnError> {
        if rows.is_empty() {
            return Ok(Vec::new());
        }
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.rel.shards.len()];
        for (idx, (s, t)) in rows.iter().enumerate() {
            let i = match s.union(t) {
                Ok(x) => self.rel.route(&x).unwrap_or(0),
                Err(_) => 0,
            };
            groups[i].push(idx);
        }
        let mut results = vec![false; rows.len()];
        for (i, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let sub: Vec<(Tuple, Tuple)> = group.iter().map(|&idx| rows[idx].clone()).collect();
            let sub_results = self.shard_tx(i).insert_all(&sub)?;
            for (&idx, r) in group.iter().zip(sub_results) {
                results[idx] = r;
            }
        }
        Ok(results)
    }

    /// Batched remove under this transaction's lock scope; per-key
    /// outcomes as for [`Transaction::remove_all`]. Routable keys run as
    /// per-shard sub-batches; a batch containing any alternate (fan-out)
    /// key runs strictly key by key instead — the grouped form would
    /// evaluate all routed keys before any fan-out key, and a routed and
    /// an alternate pattern in one batch can match the *same* tuple, where
    /// the §2 fold's outcome depends on evaluation order.
    ///
    /// # Errors
    ///
    /// As for [`Transaction::remove_all`].
    pub fn remove_all(&mut self, keys: &[Tuple]) -> Result<Vec<bool>, TxnError> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        if keys.iter().any(|k| self.rel.route(k).is_none()) {
            let mut results = Vec::with_capacity(keys.len());
            for k in keys {
                results.push(self.remove_returning(k)?.is_some());
            }
            return Ok(results);
        }
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.rel.shards.len()];
        for (idx, k) in keys.iter().enumerate() {
            groups[self.rel.shard_of(k)].push(idx);
        }
        let mut results = vec![false; keys.len()];
        for (i, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let sub: Vec<Tuple> = group.iter().map(|&idx| keys[idx].clone()).collect();
            let sub_results = self.shard_tx(i).remove_all(&sub)?;
            for (&idx, r) in group.iter().zip(sub_results) {
                results[idx] = r;
            }
        }
        Ok(results)
    }

    /// `remove r s` (§2) under this transaction's lock scope.
    ///
    /// # Errors
    ///
    /// As for [`Transaction::remove`].
    pub fn remove(&mut self, s: &Tuple) -> Result<usize, TxnError> {
        Ok(usize::from(self.remove_returning(s)?.is_some()))
    }

    /// Like [`ShardedTransaction::remove`], but returns the removed
    /// tuple. Alternate keys search shards in ascending order under this
    /// transaction's locks.
    ///
    /// # Errors
    ///
    /// As for [`Transaction::remove_returning`].
    pub fn remove_returning(&mut self, s: &Tuple) -> Result<Option<Tuple>, TxnError> {
        match self.rel.route(s) {
            Some(i) => self.shard_tx(i).remove_returning(s),
            None if !self.rel.schema().is_key(s.dom()) => {
                // Canonical RemoveNotByKey error from shard 0.
                self.shard_tx(0).remove_returning(s)
            }
            None => {
                for i in 0..self.rel.shards.len() {
                    if let Some(t) = self.shard_tx(i).remove_returning(s)? {
                        return Ok(Some(t));
                    }
                }
                Ok(None)
            }
        }
    }

    /// `update r s t` (§2) under this transaction's lock scope. Routed
    /// patterns update in place within their shard; alternate-key updates
    /// locate the tuple shard by shard and — when `t` rewrites a routing
    /// column — relocate it to its new owning shard (an unlink on one
    /// shard and an insert on another, atomic under this transaction).
    ///
    /// # Errors
    ///
    /// As for [`Transaction::update`].
    pub fn update(&mut self, s: &Tuple, t: &Tuple) -> Result<Option<Tuple>, TxnError> {
        if let Some(i) = self.rel.route(s) {
            return self.shard_tx(i).update(s, t);
        }
        // Validate up front (the §2 conditions plan_update would check):
        // past this point the operation decomposes into remove + insert.
        let schema = self.rel.schema();
        if t.is_empty() {
            return Err(TxnError::Core(CoreError::Spec(SpecError::EmptyUpdate)));
        }
        if !t.dom().is_disjoint(s.dom()) {
            return Err(TxnError::Core(CoreError::Spec(
                SpecError::UpdateOverlapsPattern {
                    shared: schema.catalog().render_set(t.dom().intersection(s.dom())),
                },
            )));
        }
        if !schema.is_key(s.dom()) {
            return Err(TxnError::Core(CoreError::Spec(SpecError::RemoveNotByKey {
                dom: schema.catalog().render_set(s.dom()),
            })));
        }
        let Some(old) = self.remove_returning(s)? else {
            return Ok(None);
        };
        let new = old.override_with(t);
        let inserted = self
            .shard_tx(self.rel.shard_of(&new))
            .insert(&new, &Tuple::empty())?;
        debug_assert!(
            inserted,
            "no tuple can extend the unlinked key under our exclusive locks"
        );
        Ok(Some(old))
    }

    /// `query r s C` (§2) under this transaction's lock scope. Fan-out
    /// patterns visit every shard and, unlike the single-shot
    /// [`ShardedRelation::query`], are **serializable**: each visited
    /// shard's locks persist to commit.
    ///
    /// # Errors
    ///
    /// As for [`Transaction::query`].
    pub fn query(&mut self, s: &Tuple, cols: ColumnSet) -> Result<Vec<Tuple>, TxnError> {
        match self.rel.route(s) {
            Some(i) => self.shard_tx(i).query(s, cols),
            None => {
                let mut acc: BTreeSet<Tuple> = BTreeSet::new();
                for i in 0..self.rel.shards.len() {
                    acc.extend(self.shard_tx(i).query(s, cols)?);
                }
                Ok(acc.into_iter().collect())
            }
        }
    }

    /// Range query under this transaction's lock scope: routed patterns
    /// visit one shard; fan-out patterns visit every shard uncapped and
    /// merge globally (same merge discipline as
    /// [`ShardedSnapshotReader::query_range`]), serializable because
    /// every visited shard's locks persist to commit.
    ///
    /// # Errors
    ///
    /// As for [`Transaction::query`].
    pub fn query_range(
        &mut self,
        s: &Tuple,
        range: &RangePattern,
        cols: ColumnSet,
    ) -> Result<Vec<Tuple>, TxnError> {
        match self.rel.route(s) {
            Some(i) => self.shard_tx(i).query_range(s, range, cols),
            None => {
                let ext = cols.with(range.col());
                let uncapped = range.without_limit();
                let mut acc: Vec<Tuple> = Vec::new();
                for i in 0..self.rel.shards.len() {
                    acc.extend(self.shard_tx(i).query_range(s, &uncapped, ext)?);
                }
                Ok(assemble_range_output(acc, range, cols))
            }
        }
    }

    /// Whether any tuple extends `s`, under this transaction's locks
    /// (fan-out patterns short-circuit but keep the visited shards'
    /// locks).
    ///
    /// # Errors
    ///
    /// As for [`Transaction::contains`].
    pub fn contains(&mut self, s: &Tuple) -> Result<bool, TxnError> {
        match self.rel.route(s) {
            Some(i) => self.shard_tx(i).contains(s),
            None => {
                for i in 0..self.rel.shards.len() {
                    if self.shard_tx(i).contains(s)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
        }
    }

    /// All tuples, sorted, as observed under this transaction's locks
    /// (serializable across shards).
    ///
    /// # Errors
    ///
    /// As for [`ShardedTransaction::query`].
    pub fn snapshot(&mut self) -> Result<Vec<Tuple>, TxnError> {
        self.query(&Tuple::empty(), self.rel.schema().columns())
    }

    /// Aborts the transaction: return this from the closure to roll back
    /// every touched shard and surface
    /// [`CoreError::TransactionAborted`].
    pub fn abort(&self, reason: impl Into<String>) -> TxnError {
        TxnError::Core(CoreError::TransactionAborted(reason.into()))
    }
}

/// A lock-free read-only view of a [`ShardedRelation`] at one commit
/// timestamp, handed to [`ShardedRelation::read_transaction`]'s closure.
/// One snapshot registration and one epoch guard span every shard: all
/// reads — routed or fanned out — resolve at the same timestamp, which
/// the shared-stamp commit protocol makes a consistent cut across
/// shards.
pub struct ShardedSnapshotReader<'r> {
    rel: &'r ShardedRelation,
    /// The per-shard representations pinned for this reader's lifetime —
    /// validated against the migration epoch at open, so they are either
    /// all pre-cutover or all post-cutover, never a mix. The held `Arc`s
    /// keep retired trees alive until the reader drops.
    reprs: Vec<Arc<Repr>>,
    snap: u64,
    guard: relc_containers::epoch::Guard,
    _reg: relc_locks::SnapshotGuard,
}

impl<'r> ShardedSnapshotReader<'r> {
    fn open(rel: &'r ShardedRelation) -> Self {
        // Capture every shard's representation and one registration, then
        // re-validate both the migration epoch and each captured pointer:
        // a live migration swaps the shards one by one, and a capture that
        // straddled the swap window could pair pre-cutover trees on some
        // shards with post-cutover trees on others. The epoch is odd for
        // exactly the swap window, so spinning past odd values and
        // re-checking afterwards guarantees an all-old or all-new set.
        // Registering before the re-check (and before pinning) keeps the
        // single-instance ordering: the registration stops committers from
        // truncating history at or below `snap`, the epoch guard keeps
        // already-truncated nodes alive.
        let (reprs, reg) = loop {
            let e1 = rel.migration_epoch.load(Ordering::Acquire);
            if e1 & 1 == 1 {
                std::thread::yield_now();
                continue;
            }
            let reprs: Vec<Arc<Repr>> = rel.shards.iter().map(|s| s.current_repr()).collect();
            let reg = rel.shards[0]
                .snapshots()
                .register(relc_locks::commit_clock());
            if rel.migration_epoch.load(Ordering::Acquire) == e1
                && reprs
                    .iter()
                    .zip(&rel.shards)
                    .all(|(r, s)| Arc::ptr_eq(r, &s.current_repr()))
            {
                break (reprs, reg);
            }
            drop(reg);
        };
        let guard = relc_containers::epoch::pin();
        ShardedSnapshotReader {
            rel,
            reprs,
            snap: reg.snap(),
            guard,
            _reg: reg,
        }
    }

    /// The commit timestamp every shard is read at.
    pub fn snapshot_ts(&self) -> u64 {
        self.snap
    }

    /// `query r s C` (§2) at this snapshot: routed patterns read the
    /// owning shard, fan-out patterns union every shard's contribution —
    /// all at the same timestamp, so the union is itself a snapshot.
    ///
    /// # Errors
    ///
    /// As for [`ConcurrentRelation::query`].
    pub fn query(&self, s: &Tuple, cols: ColumnSet) -> Result<Vec<Tuple>, CoreError> {
        match self.rel.route(s) {
            Some(i) => self.shard_query(i, s, cols),
            None => {
                let mut acc: BTreeSet<Tuple> = BTreeSet::new();
                for i in 0..self.rel.shards.len() {
                    acc.extend(self.shard_query(i, s, cols)?);
                }
                Ok(acc.into_iter().collect())
            }
        }
    }

    /// One shard's contribution at this snapshot, traversing the pinned
    /// representation (a live migration never redirects an open reader).
    fn shard_query(&self, i: usize, s: &Tuple, cols: ColumnSet) -> Result<Vec<Tuple>, CoreError> {
        self.reprs[i].snapshot_query_at(
            self.rel.shards[i].stats_arc(),
            s,
            cols,
            self.snap,
            &self.guard,
        )
    }

    /// Range query at this snapshot: routed patterns read the owning
    /// shard natively; fan-out patterns query every shard **uncapped**
    /// with the range column added to the projection, then merge, order,
    /// deduplicate, and cap globally — a per-shard cap could drop a
    /// projection whose in-shard predecessors dedup away against other
    /// shards' results. All shards are read at the one registered
    /// timestamp, so the merged result is itself a snapshot.
    ///
    /// # Errors
    ///
    /// As for [`ConcurrentRelation::query_range`].
    pub fn query_range(
        &self,
        s: &Tuple,
        range: &RangePattern,
        cols: ColumnSet,
    ) -> Result<Vec<Tuple>, CoreError> {
        match self.rel.route(s) {
            Some(i) => self.reprs[i].snapshot_query_range_at(
                self.rel.shards[i].stats_arc(),
                s,
                range,
                cols,
                self.snap,
                &self.guard,
            ),
            None => {
                let ext = cols.with(range.col());
                let uncapped = range.without_limit();
                let mut acc: Vec<Tuple> = Vec::new();
                for (i, repr) in self.reprs.iter().enumerate() {
                    acc.extend(repr.snapshot_query_range_at(
                        self.rel.shards[i].stats_arc(),
                        s,
                        &uncapped,
                        ext,
                        self.snap,
                        &self.guard,
                    )?);
                }
                Ok(assemble_range_output(acc, range, cols))
            }
        }
    }

    /// Whether any tuple extends `s` at this snapshot; fan-out patterns
    /// short-circuit at the first shard with a witness.
    ///
    /// # Errors
    ///
    /// As for [`ShardedSnapshotReader::query`].
    pub fn contains(&self, s: &Tuple) -> Result<bool, CoreError> {
        match self.rel.route(s) {
            Some(i) => self.reprs[i].snapshot_exists_at(
                self.rel.shards[i].stats_arc(),
                s,
                self.snap,
                &self.guard,
            ),
            None => {
                for (i, repr) in self.reprs.iter().enumerate() {
                    if repr.snapshot_exists_at(
                        self.rel.shards[i].stats_arc(),
                        s,
                        self.snap,
                        &self.guard,
                    )? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
        }
    }

    /// All tuples at this snapshot, sorted and deduplicated across
    /// shards.
    ///
    /// # Errors
    ///
    /// As for [`ShardedSnapshotReader::query`].
    pub fn snapshot(&self) -> Result<Vec<Tuple>, CoreError> {
        self.query(&Tuple::empty(), self.rel.schema().columns())
    }
}

impl fmt::Debug for ShardedSnapshotReader<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedSnapshotReader")
            .field("snapshot_ts", &self.snap)
            .field("shards", &self.rel.shards.len())
            .finish()
    }
}

impl fmt::Debug for ShardedTransaction<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedTransaction")
            .field("shards", &self.rel.shards.len())
            .field(
                "touched",
                &self
                    .open
                    .iter()
                    .enumerate()
                    .filter_map(|(i, t)| t.as_ref().map(|_| i))
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}
