//! # relc — concurrent data representation synthesis
//!
//! A Rust reproduction of *Concurrent Data Representation Synthesis*
//! (Hawkins, Aiken, Fisher, Rinard, Sagiv — PLDI 2012). Given a relational
//! specification (columns + functional dependencies), a *decomposition* (a
//! DAG of cooperating containers, §4.1), and a *lock placement* (§4.3–4.5),
//! this crate synthesizes a [`ConcurrentRelation`]: a linearizable,
//! deadlock-free concurrent relation object whose operations are compiled
//! query plans over the decomposition (§5).
//!
//! ```
//! use relc::{ConcurrentRelation, decomp, placement::LockPlacement};
//! use relc_containers::ContainerKind;
//! use relc_spec::Value;
//!
//! // Fig. 3(b)-style "split" graph decomposition, fine-grained locks.
//! let d = decomp::library::split(ContainerKind::ConcurrentHashMap,
//!                                ContainerKind::HashMap);
//! let p = LockPlacement::fine(&d)?;
//! let graph = ConcurrentRelation::new(d.clone(), p)?;
//!
//! let schema = d.schema();
//! let key = schema.tuple(&[("src", Value::from(1)), ("dst", Value::from(2))])?;
//! let payload = schema.tuple(&[("weight", Value::from(42))])?;
//! assert!(graph.insert(&key, &payload)?);
//!
//! let succ = graph.query(&schema.tuple(&[("src", Value::from(1))])?,
//!                        schema.column_set(&["dst", "weight"])?)?;
//! assert_eq!(succ.len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod decomp;
pub mod error;
pub mod exec;
pub mod instance;
pub mod lincheck;
pub(crate) mod mvcc;
pub mod placement;
pub mod planner;
pub mod query;
pub mod relation;
pub mod shard;
pub mod txn;
pub mod viz;
pub mod wal;

pub use analysis::{Analyzer, AnalyzerOptions, Diagnostic, DiagnosticKind};
pub use decomp::{Decomposition, DecompositionBuilder, EdgeId, NodeId};
pub use error::CoreError;
pub use placement::{LockPlacement, LockToken, PlacementBuilder};
pub use planner::{Plan, Planner};
pub use relation::{ConcurrentRelation, OpCountersSnapshot, SnapshotReader, StatsSnapshot};
pub use relc_containers::{ReclamationStats, VersionStats};
pub use shard::{ShardedRelation, ShardedSnapshotReader, ShardedTransaction};
pub use txn::{Transaction, TxnError};
pub use wal::{RecoveryReport, WalOptions};
