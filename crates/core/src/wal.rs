//! Write-ahead logging, checkpointing, and crash recovery.
//!
//! Opt-in durability under the transaction layer: a relation opened with
//! [`ConcurrentRelation::open_durable`] appends **one logical redo record
//! per committed transaction** — serialized from the same op stream the
//! undo log captures, but recording the *forward* calls — stamped with
//! the transaction's [`CommitClock`] timestamp and published in watermark
//! order, so the log is a timestamp-ordered history of commits. Fsyncs
//! are batched by [`relc_locks::GroupCommit`]: concurrent committers
//! amortize one `fsync` across the in-order publication queue.
//!
//! # Record format
//!
//! Every record is framed as
//!
//! ```text
//! magic 0xA7 · kind u8 · len u32 LE · fnv1a64 u64 LE · payload (len bytes)
//! ```
//!
//! with the checksum taken over `magic‖kind‖len‖payload`. A commit
//! record's payload is `ts u64 · flags u8 · n_ops u32 · ops`, each op a
//! tagged forward call (insert/remove/update) with its argument tuples; a
//! cross-shard **marker** record's payload is just the shared timestamp.
//! Recovery scans until the first corrupt or short record — a torn tail
//! (the crash landed mid-append) truncates to the durable prefix, which
//! group-commit's in-order flushing makes a *committed* prefix.
//!
//! # Checkpoint and recovery
//!
//! A checkpoint freezes the relation behind the migration write-fence
//! (every writer drained — the same machinery as
//! [`ConcurrentRelation::migrate_to`]), snapshots the contents at one
//! MVCC cut, writes them to a sidecar file (tmp + fsync + rename), and
//! truncates the log: records at or below the checkpoint's cut are
//! superseded. Recovery loads the checkpoint, replays the log tail
//! through the normal `transaction` path (one transaction per record, so
//! the original atomicity is preserved), and re-seeds the clock
//! **strictly above** the highest replayed stamp
//! ([`relc_locks::CommitClock::advance_to`]). Replay is keyed on that
//! floor — a record at or below `applied_through` is skipped — which
//! makes replaying the same tail twice a no-op.
//!
//! [`ConcurrentRelation::open_durable`]: crate::ConcurrentRelation::open_durable
//! [`ConcurrentRelation::migrate_to`]: crate::ConcurrentRelation::migrate_to
//! [`CommitClock`]: relc_locks::CommitClock

use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::MutexGuard;
use std::time::Duration;

use relc_locks::{GroupCommit, GroupCommitStats};
use relc_spec::{ColumnId, Tuple, Value};

use crate::error::CoreError;
use crate::txn::RedoOp;

/// Leading byte of every log record.
const RECORD_MAGIC: u8 = 0xA7;
/// Record kinds.
const KIND_COMMIT: u8 = 1;
const KIND_MARKER: u8 = 2;
/// Commit-record flag: part of a cross-shard transaction, valid only if
/// the shared timestamp's marker record is durable in shard 0's log.
const FLAG_CROSS_SHARD: u8 = 0x01;
/// Checkpoint file magic.
const CKPT_MAGIC: &[u8; 8] = b"RELCKPT1";

/// How a durable relation's log behaves.
#[derive(Debug, Clone, Copy)]
pub struct WalOptions {
    /// Whether flushes `fsync` (true = real durability; false = buffered
    /// writes only, for benchmarks isolating the logging overhead).
    pub fsync: bool,
    /// Group-commit leader micro-delay: how long the elected flush leader
    /// waits for concurrent committers to join its batch before draining.
    /// Zero (the default) flushes immediately — lowest latency, batching
    /// only what arrived while the previous flush was in flight.
    pub group_window: Duration,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            fsync: true,
            group_window: Duration::ZERO,
        }
    }
}

/// What crash recovery found and did; returned by
/// [`ConcurrentRelation::open_durable`] and
/// [`ConcurrentRelation::replay_log`].
///
/// [`ConcurrentRelation::open_durable`]: crate::ConcurrentRelation::open_durable
/// [`ConcurrentRelation::replay_log`]: crate::ConcurrentRelation::replay_log
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Rows loaded from the checkpoint file.
    pub checkpoint_rows: usize,
    /// Log records replayed (each one original transaction).
    pub replayed: usize,
    /// Highest commit timestamp replayed (or the checkpoint cut if the
    /// tail was empty); the clock resumes strictly above it.
    pub max_ts: u64,
    /// Whether the log ended in a torn (corrupt or short) record that
    /// the scan discarded.
    pub torn_tail: bool,
}

impl RecoveryReport {
    /// Folds another shard's (or pass's) report into this one.
    pub(crate) fn merge(&mut self, other: &RecoveryReport) {
        self.checkpoint_rows += other.checkpoint_rows;
        self.replayed += other.replayed;
        self.max_ts = self.max_ts.max(other.max_ts);
        self.torn_tail |= other.torn_tail;
    }
}

/// One relation's write-ahead log: the group-commit log file, the
/// checkpoint sidecar path, and the replay floor.
#[derive(Debug)]
pub(crate) struct Wal {
    log: GroupCommit,
    checkpoint_path: PathBuf,
    /// Replay floor: records with `ts <= applied_through` are already in
    /// the in-memory state (loaded from the checkpoint or replayed), so
    /// a second replay pass skips them — recovery idempotence.
    applied_through: AtomicU64,
}

impl Wal {
    /// Opens (creating if absent) the log at `log_path` with
    /// `checkpoint_path` as its checkpoint sidecar.
    pub(crate) fn open(
        log_path: impl AsRef<Path>,
        checkpoint_path: impl AsRef<Path>,
        opts: WalOptions,
    ) -> Result<Wal, CoreError> {
        let mut log = GroupCommit::open(log_path, opts.fsync).map_err(io_err("open log"))?;
        log.set_group_window(opts.group_window);
        Ok(Wal {
            log,
            checkpoint_path: checkpoint_path.as_ref().to_path_buf(),
            applied_through: AtomicU64::new(0),
        })
    }

    /// The external ordering lock; held across commit-timestamp
    /// allocation *and* the record append so log order equals timestamp
    /// order (the prefix-closure recovery relies on).
    pub(crate) fn lock_order(&self) -> MutexGuard<'_, ()> {
        self.log.lock_order()
    }

    /// Appends one commit record (buffered; durable after
    /// [`Self::wait_durable`]). `ops_bytes` is the pre-encoded op stream
    /// from [`encode_ops`] — pre-encoding keeps the work under the order
    /// lock to a couple of memcpys.
    pub(crate) fn append_commit(&self, ts: u64, cross_shard: bool, ops_bytes: &[u8]) -> u64 {
        let mut payload = Vec::with_capacity(9 + ops_bytes.len());
        payload.extend_from_slice(&ts.to_le_bytes());
        payload.push(if cross_shard { FLAG_CROSS_SHARD } else { 0 });
        payload.extend_from_slice(ops_bytes);
        self.log.append(&frame(KIND_COMMIT, &payload))
    }

    /// Appends one cross-shard marker record for the shared timestamp.
    pub(crate) fn append_marker(&self, ts: u64) -> u64 {
        self.log.append(&frame(KIND_MARKER, &ts.to_le_bytes()))
    }

    /// Blocks until record `seq` is durable (group-commit batched).
    pub(crate) fn wait_durable(&self, seq: u64) -> Result<(), CoreError> {
        self.log.wait_durable(seq).map_err(io_err("fsync log"))
    }

    /// Reads the log from disk: the valid record prefix plus whether the
    /// scan stopped at a torn tail.
    pub(crate) fn read_records(&self) -> Result<(Vec<WalRecord>, bool), CoreError> {
        read_log(self.log.path())
    }

    /// Writes the checkpoint sidecar (tmp + fsync + rename + dir fsync)
    /// and truncates the log. Caller must have writers quiescent (the
    /// relation's migration fence held).
    pub(crate) fn checkpoint(&self, cut_ts: u64, rows: &[Tuple]) -> Result<(), CoreError> {
        self.write_snapshot(cut_ts, rows)?;
        self.truncate_log()
    }

    /// The checkpoint's first phase: the sidecar write alone, log left
    /// untouched. The sharded checkpoint writes *every* shard's sidecar
    /// before truncating *any* log (shard 0's — the marker log — last),
    /// so a crash between the phases can never strand a cross-shard data
    /// record whose marker was already truncated away.
    pub(crate) fn write_snapshot(&self, cut_ts: u64, rows: &[Tuple]) -> Result<(), CoreError> {
        write_checkpoint(
            &self.checkpoint_path,
            cut_ts,
            rows,
            self.log.fsync_enabled(),
        )?;
        // Records ≤ the cut are superseded by the checkpoint; raising the
        // floor keeps a replay pass from re-applying them even while the
        // log still holds them.
        self.applied_through.fetch_max(cut_ts, Ordering::SeqCst);
        Ok(())
    }

    /// The checkpoint's second phase: truncate the log (releasing any
    /// committers still parked on a group fsync — the just-written
    /// snapshot covers their effects).
    pub(crate) fn truncate_log(&self) -> Result<(), CoreError> {
        self.log
            .truncate_and_reset()
            .map_err(io_err("truncate log"))
    }

    /// Loads the checkpoint sidecar, if one exists: `(cut_ts, rows)`.
    pub(crate) fn read_checkpoint(&self) -> Result<Option<(u64, Vec<Tuple>)>, CoreError> {
        read_checkpoint(&self.checkpoint_path)
    }

    /// The replay floor (highest timestamp already in memory).
    pub(crate) fn applied_through(&self) -> u64 {
        self.applied_through.load(Ordering::SeqCst)
    }

    /// Raises the replay floor (never lowers it).
    pub(crate) fn raise_applied_through(&self, ts: u64) {
        self.applied_through.fetch_max(ts, Ordering::SeqCst);
    }

    /// Group-commit batching counters for this log.
    pub(crate) fn stats(&self) -> GroupCommitStats {
        self.log.stats()
    }
}

/// A decoded log record.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum WalRecord {
    /// One committed transaction's forward op stream.
    Commit {
        /// The transaction's commit timestamp.
        ts: u64,
        /// Whether it was part of a cross-shard transaction (valid only
        /// with a durable marker for `ts`).
        cross_shard: bool,
        /// The applied operations, in order.
        ops: Vec<RedoOp>,
    },
    /// Cross-shard commit marker: every involved shard's data records
    /// for `ts` were durable when this was appended.
    Marker {
        /// The cross-shard transaction's shared timestamp.
        ts: u64,
    },
}

impl WalRecord {
    /// The record's commit timestamp.
    pub(crate) fn ts(&self) -> u64 {
        match self {
            WalRecord::Commit { ts, .. } | WalRecord::Marker { ts } => *ts,
        }
    }
}

fn io_err(what: &'static str) -> impl Fn(io::Error) -> CoreError {
    move |e| CoreError::Durability(format!("{what}: {e}"))
}

/// FNV-1a 64-bit over `bytes` (no external deps; collision resistance is
/// irrelevant here — the checksum detects torn writes, not adversaries).
fn fnv1a64(chunks: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in chunks {
        for &b in *chunk {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Frames one record: magic · kind · len · checksum · payload.
fn frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let len = u32::try_from(payload.len()).expect("record payload under 4 GiB");
    let len_bytes = len.to_le_bytes();
    let sum = fnv1a64(&[&[RECORD_MAGIC, kind], &len_bytes, payload]);
    let mut out = Vec::with_capacity(14 + payload.len());
    out.push(RECORD_MAGIC);
    out.push(kind);
    out.extend_from_slice(&len_bytes);
    out.extend_from_slice(&sum.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Serializes an op stream (`n_ops u32 · ops`) for
/// [`Wal::append_commit`].
pub(crate) fn encode_ops(ops: &[RedoOp]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for op in ops {
        match op {
            RedoOp::Insert(s, t) => {
                out.push(0);
                encode_tuple(&mut out, s);
                encode_tuple(&mut out, t);
            }
            RedoOp::Remove(key) => {
                out.push(1);
                encode_tuple(&mut out, key);
            }
            RedoOp::Update(s, t) => {
                out.push(2);
                encode_tuple(&mut out, s);
                encode_tuple(&mut out, t);
            }
        }
    }
    out
}

fn encode_tuple(out: &mut Vec<u8>, t: &Tuple) {
    let n = t.iter().count() as u32;
    out.extend_from_slice(&n.to_le_bytes());
    for (col, v) in t.iter() {
        out.extend_from_slice(&(col.index() as u32).to_le_bytes());
        match v {
            Value::Unit => out.push(0),
            Value::Bool(b) => {
                out.push(1);
                out.push(u8::from(*b));
            }
            Value::Int(i) => {
                out.push(2);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Str(s) => {
                out.push(3);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
    }
}

/// A bounds-checked little-endian reader; every decode failure surfaces
/// as `None`, which the log scan treats as a torn tail.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn i64(&mut self) -> Option<i64> {
        self.take(8)
            .map(|b| i64::from_le_bytes(b.try_into().unwrap()))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn decode_tuple(c: &mut Cursor<'_>) -> Option<Tuple> {
    let n = c.u32()? as usize;
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        let col = ColumnId::from_index(c.u32()? as usize);
        let v = match c.u8()? {
            0 => Value::Unit,
            1 => Value::Bool(c.u8()? != 0),
            2 => Value::Int(c.i64()?),
            3 => {
                let len = c.u32()? as usize;
                let bytes = c.take(len)?;
                Value::Str(std::str::from_utf8(bytes).ok()?.into())
            }
            _ => return None,
        };
        pairs.push((col, v));
    }
    Some(Tuple::from_pairs(pairs))
}

fn decode_ops(c: &mut Cursor<'_>) -> Option<Vec<RedoOp>> {
    let n = c.u32()? as usize;
    let mut ops = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        ops.push(match c.u8()? {
            0 => RedoOp::Insert(decode_tuple(c)?, decode_tuple(c)?),
            1 => RedoOp::Remove(decode_tuple(c)?),
            2 => RedoOp::Update(decode_tuple(c)?, decode_tuple(c)?),
            _ => return None,
        });
    }
    Some(ops)
}

fn decode_record(kind: u8, payload: &[u8]) -> Option<WalRecord> {
    let mut c = Cursor::new(payload);
    let rec = match kind {
        KIND_COMMIT => {
            let ts = c.u64()?;
            let flags = c.u8()?;
            let ops = decode_ops(&mut c)?;
            WalRecord::Commit {
                ts,
                cross_shard: flags & FLAG_CROSS_SHARD != 0,
                ops,
            }
        }
        KIND_MARKER => WalRecord::Marker { ts: c.u64()? },
        _ => return None,
    };
    c.done().then_some(rec)
}

/// Scans a log file: the valid record prefix, plus whether the scan
/// stopped early at a torn (corrupt or short) record. A missing file is
/// an empty, untorn log.
pub(crate) fn read_log(path: &Path) -> Result<(Vec<WalRecord>, bool), CoreError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), false)),
        Err(e) => return Err(io_err("read log")(e)),
    };
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let Some(rec) = (|| {
            let header = bytes.get(pos..pos + 14)?;
            if header[0] != RECORD_MAGIC {
                return None;
            }
            let kind = header[1];
            let len = u32::from_le_bytes(header[2..6].try_into().unwrap()) as usize;
            let sum = u64::from_le_bytes(header[6..14].try_into().unwrap());
            let payload = bytes.get(pos + 14..pos + 14 + len)?;
            if fnv1a64(&[&header[..2], &header[2..6], payload]) != sum {
                return None;
            }
            let rec = decode_record(kind, payload)?;
            pos += 14 + len;
            Some(rec)
        })() else {
            // Torn tail: everything before `pos` is intact and, by the
            // in-order flush discipline, a committed prefix.
            return Ok((records, true));
        };
        records.push(rec);
    }
    Ok((records, false))
}

/// Writes the checkpoint sidecar atomically: tmp file, fsync, rename
/// over the old checkpoint, fsync the directory. A crash before the
/// rename leaves the old checkpoint (and the untruncated log) intact; a
/// crash after it but before log truncation is harmless because replay
/// skips records at or below the new cut.
fn write_checkpoint(
    path: &Path,
    cut_ts: u64,
    rows: &[Tuple],
    fsync: bool,
) -> Result<(), CoreError> {
    let mut body = Vec::new();
    body.extend_from_slice(CKPT_MAGIC);
    body.extend_from_slice(&cut_ts.to_le_bytes());
    body.extend_from_slice(&(rows.len() as u64).to_le_bytes());
    for row in rows {
        encode_tuple(&mut body, row);
    }
    let sum = fnv1a64(&[&body]);
    body.extend_from_slice(&sum.to_le_bytes());

    let tmp = path.with_extension("tmp");
    (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(&body)?;
        if fsync {
            f.sync_all()?;
        }
        drop(f);
        std::fs::rename(&tmp, path)?;
        if fsync {
            if let Some(dir) = path.parent() {
                // Persist the rename itself; failure to open the
                // directory (exotic filesystems) degrades gracefully.
                if let Ok(d) = OpenOptions::new().read(true).open(dir) {
                    let _ = d.sync_all();
                }
            }
        }
        Ok(())
    })()
    .map_err(io_err("write checkpoint"))
}

/// Loads a checkpoint sidecar: `None` if absent, the cut timestamp and
/// rows otherwise.
///
/// # Errors
///
/// [`CoreError::Durability`] if the file exists but fails validation —
/// unlike the log's torn tail, a *renamed* checkpoint was fsynced whole
/// before the rename, so corruption here is real damage, not a crash
/// artifact, and recovery must not silently drop the whole relation.
fn read_checkpoint(path: &Path) -> Result<Option<(u64, Vec<Tuple>)>, CoreError> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => f
            .read_to_end(&mut bytes)
            .map_err(io_err("read checkpoint"))?,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err("read checkpoint")(e)),
    };
    let corrupt = || CoreError::Durability("corrupt checkpoint".into());
    if bytes.len() < CKPT_MAGIC.len() + 8 + 8 + 8 || &bytes[..8] != CKPT_MAGIC {
        return Err(corrupt());
    }
    let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
    if fnv1a64(&[body]) != u64::from_le_bytes(sum_bytes.try_into().unwrap()) {
        return Err(corrupt());
    }
    let mut c = Cursor::new(&body[8..]);
    let parse = |c: &mut Cursor<'_>| -> Option<(u64, Vec<Tuple>)> {
        let cut_ts = c.u64()?;
        let n = c.u64()? as usize;
        let mut rows = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            rows.push(decode_tuple(c)?);
        }
        c.done().then_some((cut_ts, rows))
    };
    parse(&mut c).map(Some).ok_or_else(corrupt)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(pairs: &[(usize, i64)]) -> Tuple {
        Tuple::from_pairs(
            pairs
                .iter()
                .map(|&(c, v)| (ColumnId::from_index(c), Value::Int(v))),
        )
    }

    #[test]
    fn record_round_trip_all_value_kinds() {
        let s = Tuple::from_pairs([
            (ColumnId::from_index(0), Value::Int(-7)),
            (ColumnId::from_index(1), Value::Str("héllo".into())),
        ]);
        let tt = Tuple::from_pairs([
            (ColumnId::from_index(2), Value::Bool(true)),
            (ColumnId::from_index(3), Value::Unit),
        ]);
        let ops = vec![
            RedoOp::Insert(s.clone(), tt.clone()),
            RedoOp::Remove(s.clone()),
            RedoOp::Update(s.clone(), tt.clone()),
        ];
        let payload = {
            let mut p = 99u64.to_le_bytes().to_vec();
            p.push(FLAG_CROSS_SHARD);
            p.extend_from_slice(&encode_ops(&ops));
            p
        };
        let framed = frame(KIND_COMMIT, &payload);
        let dir = std::env::temp_dir().join(format!("relc-wal-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log");
        std::fs::write(&path, &framed).unwrap();
        let (records, torn) = read_log(&path).unwrap();
        assert!(!torn);
        assert_eq!(records.len(), 1);
        match &records[0] {
            WalRecord::Commit {
                ts,
                cross_shard,
                ops: got,
            } => {
                assert_eq!(*ts, 99);
                assert!(cross_shard);
                assert_eq!(got, &ops);
            }
            other => panic!("wrong record: {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_stops_at_first_bad_record() {
        let dir = std::env::temp_dir().join(format!("relc-wal-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log");
        let r1 = frame(KIND_MARKER, &1u64.to_le_bytes());
        let r2 = frame(KIND_MARKER, &2u64.to_le_bytes());
        let mut bytes = [r1.clone(), r2.clone()].concat();
        // Every proper prefix that cuts into r2 yields exactly [r1].
        for cut in r1.len()..bytes.len() {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let (records, torn) = read_log(&path).unwrap();
            assert_eq!(torn, cut != r1.len() + r2.len() && cut != r1.len());
            assert_eq!(records.len(), if cut < r1.len() + r2.len() { 1 } else { 2 });
        }
        // Flip a payload byte of r2: checksum catches it.
        let flip = r1.len() + 14;
        bytes[flip] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (records, torn) = read_log(&path).unwrap();
        assert!(torn);
        assert_eq!(records, vec![WalRecord::Marker { ts: 1 }]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_round_trip_and_corruption() {
        let dir = std::env::temp_dir().join(format!("relc-wal-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt");
        assert_eq!(read_checkpoint(&path).unwrap(), None);
        let rows = vec![t(&[(0, 1), (1, 10)]), t(&[(0, 2), (1, 20)])];
        write_checkpoint(&path, 42, &rows, false).unwrap();
        assert_eq!(read_checkpoint(&path).unwrap(), Some((42, rows)));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(CoreError::Durability(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
