//! The MVCC write mirror and lock-free snapshot walkers.
//!
//! Every locked container mutation in [`crate::exec`] is mirrored into
//! the written instance's *shadow version index* (see
//! [`crate::instance::VersionIndex`]): a lock-free map from entry key to
//! that entry's [`VersionCell`] chain, kept parallel to the edge's main
//! container. All versions written by one transaction attempt share one
//! [`CommitStamp`]; the commit path stamps it through the global
//! [`commit clock`](relc_locks::commit_clock) *before* the lock engine
//! releases anything, so a version's stamp being `≤` a reader's snapshot
//! implies the whole owning transaction committed before that snapshot.
//!
//! Snapshot readers ([`crate::relation::SnapshotReader`]) never touch
//! the main containers — many of which are unsafe under concurrent
//! writes and rely on the synthesized lock placement — only the version
//! indexes, resolving at each edge the newest version committed at or
//! before their snapshot timestamp. They hold an epoch guard for the
//! whole traversal, which keeps truncated version nodes and purged cells
//! alive until they are done.
//!
//! # Version retirement
//!
//! At commit (locks still held), the committer computes the oldest
//! snapshot any in-flight reader holds
//! ([`SnapshotRegistry::min_active`](relc_locks::SnapshotRegistry::min_active))
//! once, then for every cell in its write journal: truncates versions
//! strictly older than the newest version at or below that floor, and —
//! if the cell's whole remaining history is one committed tombstone at
//! or below the floor — unlinks the cell from its index (the skip list
//! defers the `Arc` through the epoch collector, so retirement shows up
//! in `ReclamationStats`). Cells are only ever mutated or unlinked by a
//! transaction holding the entry's 2PL write locks, which is what makes
//! the chains single-writer. A cell tombstoned while an old reader was
//! still live is retired the next time *any* transaction writes that
//! entry (or when the relation drops); it is never reclaimed behind a
//! lock-free reader's back.

use std::collections::BTreeSet;
use std::ops::ControlFlow;
use std::sync::Arc;

use relc_containers::epoch::Guard;
use relc_containers::{Container, VersionCell};
use relc_locks::CommitStamp;
use relc_spec::Tuple;

use relc_spec::RangePattern;

use crate::decomp::{Decomposition, EdgeId};
use crate::exec::{assemble_range_output, range_key_bounds};
use crate::instance::NodeRef;
use crate::placement::LockPlacement;
use crate::planner::Plan;
use crate::query::{PlanStep, QueryState};

/// One mirrored write: enough to revisit the cell at commit for
/// truncation and dead-cell purge.
pub(crate) struct JournalEntry {
    /// The instance whose version index holds the cell.
    pub host: NodeRef,
    /// The outgoing edge the entry belongs to.
    pub edge: EdgeId,
    /// The entry key within the edge.
    pub key: Tuple,
    /// The entry's version chain.
    pub cell: Arc<VersionCell<NodeRef>>,
}

/// Per-transaction-attempt MVCC state, owned by the executor: the shared
/// commit stamp (created lazily on the first mirrored write, so
/// read-only and no-op transactions never touch the clock) and the write
/// journal revisited at commit.
#[derive(Default)]
pub(crate) struct MvccScope {
    stamp: Option<Arc<CommitStamp>>,
    pub journal: Vec<JournalEntry>,
}

impl MvccScope {
    /// The attempt's stamp, created on first use.
    pub fn stamp(&mut self) -> Arc<CommitStamp> {
        Arc::clone(self.stamp.get_or_insert_with(CommitStamp::new))
    }

    /// The stamp, if any mirrored write created one.
    pub fn stamp_opt(&self) -> Option<&Arc<CommitStamp>> {
        self.stamp.as_ref()
    }

    /// Pre-seeds the stamp (cross-shard attempts share one stamp).
    ///
    /// A late injection — after a mirrored write already lazily created a
    /// stamp — would split one attempt's versions across two
    /// `CommitStamp`s and break single-timestamp atomic visibility, so
    /// this asserts in release builds too (it is a once-per-attempt
    /// path; the cost is negligible).
    pub fn set_stamp(&mut self, stamp: Arc<CommitStamp>) {
        assert!(
            self.stamp.is_none(),
            "stamp injection must precede every mirrored write"
        );
        self.stamp = Some(stamp);
    }

    /// Mirrors one locked container write into `host`'s version index
    /// for `edge`: pushes a version (`None` = tombstone) stamped with
    /// this attempt's stamp onto the entry's cell, creating the cell on
    /// first write. Caller must hold the entry's placement write locks —
    /// the same locks that serialize the mirrored container mutation —
    /// which serializes all same-entry cell mutation.
    pub fn write(
        &mut self,
        decomp: &Decomposition,
        host: &NodeRef,
        edge: EdgeId,
        key: Tuple,
        value: Option<NodeRef>,
        guard: &Guard,
    ) {
        let stamp = self.stamp();
        let index = host.versions(decomp, edge);
        let cell = match index.lookup(&key) {
            Some(cell) => {
                cell.push(stamp, value, guard);
                cell
            }
            None => {
                let cell = Arc::new(VersionCell::new(stamp, value));
                index.write(&key, Some(Arc::clone(&cell)));
                cell
            }
        };
        self.journal.push(JournalEntry {
            host: Arc::clone(host),
            edge,
            key,
            cell,
        });
    }

    /// Commit-side maintenance, run with the attempt's locks still held
    /// and its stamp already committed: truncate every journaled cell to
    /// the retirement floor `min_active` and unlink cells whose whole
    /// visible history is one committed tombstone at or below it.
    ///
    /// Where the placement guards a whole edge container instance with
    /// one physical lock
    /// (`!`[`LockPlacement::admits_container_concurrency`]), the *whole*
    /// version index of each journaled edge is swept, not just the
    /// journaled cells. A dead cell that a live reader pinned at *its*
    /// committing transaction's retirement can only otherwise be
    /// reclaimed by a later write of the same entry key — and on
    /// value-keyed edges (a weight sink, say) the same key rarely
    /// recurs, so those corpses would pile up and every snapshot scan
    /// would crawl them forever. The sweep is safe exactly because this
    /// attempt holds that single per-instance lock exclusively for every
    /// journaled edge, so no other writer can be mutating *any* cell of
    /// the index. Speculative edges (present entries locked at per-entry
    /// targets) and edges striped by entry-key columns (another stripe's
    /// writer may hold another stripe) keep the journaled-cells-only
    /// rule — there, the entry keys are relation keys, which workloads
    /// do rewrite.
    pub fn retire(&self, placement: &LockPlacement, min_active: u64, guard: &Guard) {
        let decomp = placement.decomposition();
        let mut swept: Vec<(*const (), EdgeId)> = Vec::new();
        for entry in &self.journal {
            if !placement.admits_container_concurrency(entry.edge) {
                let tag = (Arc::as_ptr(&entry.host).cast::<()>(), entry.edge);
                if swept.contains(&tag) {
                    continue;
                }
                swept.push(tag);
                let index = entry.host.versions(decomp, entry.edge);
                let mut dead: Vec<Tuple> = Vec::new();
                index.scan(&mut |k: &Tuple, cell| {
                    cell.truncate(min_active, guard);
                    if cell.is_dead(min_active, guard) {
                        dead.push(k.clone());
                    }
                    std::ops::ControlFlow::<()>::Continue(())
                });
                for k in dead {
                    index.write(&k, None);
                }
            } else {
                entry.cell.truncate(min_active, guard);
                if entry.cell.is_dead(min_active, guard) {
                    entry
                        .host
                        .versions(decomp, entry.edge)
                        .write(&entry.key, None);
                }
            }
        }
    }
}

/// Stamps and retires the MVCC scopes of one finishing attempt — commit
/// *and* rollback paths alike (compensations push versions under the same
/// stamp, so an aborted attempt's stamped state equals the
/// pre-transaction state; leaving the stamp tentative forever would pin
/// every entry the attempt touched at its pre-attempt version chain
/// head). Must run while the attempt's locks are still held and strictly
/// before the engine releases anything: that ordering is the whole
/// commit-visibility argument. Scopes with an empty journal are ignored;
/// if none wrote, the clock is never touched. Retirement truncates to
/// `registry`'s floor — the *owning relation's* registry, so snapshot
/// readers of other relations never pin this relation's dead versions.
pub(crate) fn finish_attempt(
    placement: &LockPlacement,
    registry: &relc_locks::SnapshotRegistry,
    scopes: &[MvccScope],
) {
    finish_attempt_with(placement, registry, scopes, |_| {});
}

/// [`finish_attempt`] with a publication hook: `publish` runs with the
/// freshly committed timestamp immediately after the clock publishes it
/// and strictly before version retirement. The WAL's commit path appends
/// its redo record there — still inside the committer's log-order
/// critical section, so log order equals timestamp order.
pub(crate) fn finish_attempt_with(
    placement: &LockPlacement,
    registry: &relc_locks::SnapshotRegistry,
    scopes: &[MvccScope],
    publish: impl FnOnce(u64),
) {
    let paired: Vec<(&LockPlacement, &MvccScope)> = scopes.iter().map(|s| (placement, s)).collect();
    finish_attempt_mixed_with(registry, &paired, publish);
}

/// [`finish_attempt`] for scopes journaled against *different*
/// placements: a cross-shard attempt that raced a live migration can
/// hold per-shard representations from both sides of the cutover, and a
/// scope's journal entries only resolve against the placement (and its
/// decomposition) they were written under. One stamp still publishes
/// for the whole attempt; each scope retires under its own placement.
pub(crate) fn finish_attempt_mixed(
    registry: &relc_locks::SnapshotRegistry,
    scopes: &[(&LockPlacement, &MvccScope)],
) {
    finish_attempt_mixed_with(registry, scopes, |_| {});
}

/// [`finish_attempt_mixed`] with the same publication hook as
/// [`finish_attempt_with`]: `publish` runs with the committed timestamp
/// right after publication (and never runs if no scope wrote — a pure
/// read commits no timestamp and logs nothing).
pub(crate) fn finish_attempt_mixed_with(
    registry: &relc_locks::SnapshotRegistry,
    scopes: &[(&LockPlacement, &MvccScope)],
    publish: impl FnOnce(u64),
) {
    let Some(stamp) = scopes
        .iter()
        .find(|(_, s)| !s.journal.is_empty())
        .and_then(|(_, s)| s.stamp_opt())
    else {
        return;
    };
    let clock = relc_locks::commit_clock();
    let ts = clock.commit(stamp);
    publish(ts);
    let min_active = registry.min_active(clock);
    let guard = relc_containers::epoch::pin();
    for (placement, scope) in scopes {
        scope.retire(placement, min_active, &guard);
    }
}

impl std::fmt::Debug for MvccScope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MvccScope")
            .field("stamped", &self.stamp.is_some())
            .field("journal", &self.journal.len())
            .finish()
    }
}

/// Quiescent verification of every version chain reachable from `root`
/// (test support; surfaced through
/// [`ConcurrentRelation::verify`](crate::ConcurrentRelation::verify)):
///
/// * chain stamps are strictly decreasing newest-first;
/// * no tentative stamp survives quiescence ([`finish_attempt`] commits
///   the stamp on rollback paths too);
/// * after compacting each chain to the current retirement floor, at
///   most one version sits at or below the floor (the keeper —
///   [`VersionCell::truncate`]'s postcondition);
/// * the version indexes, resolved at the current clock time, carry
///   exactly the live keys of the main containers (every locked write
///   was mirrored, every mirror was written).
///
/// As a side effect chains are compacted to the current floor, exactly
/// as a committing writer would; at quiescence that is sound and
/// exercises the retirement path.
pub(crate) fn verify_versions(
    decomp: &Decomposition,
    root: &NodeRef,
    registry: &relc_locks::SnapshotRegistry,
) -> Result<(), String> {
    let clock = relc_locks::commit_clock();
    let floor = registry.min_active(clock);
    let now = clock.now();
    let guard = relc_containers::epoch::pin();
    let mut seen: Vec<*const ()> = Vec::new();
    let mut stack: Vec<NodeRef> = vec![Arc::clone(root)];
    while let Some(inst) = stack.pop() {
        let ptr = Arc::as_ptr(&inst).cast::<()>();
        if seen.contains(&ptr) {
            continue;
        }
        seen.push(ptr);
        let meta = decomp.node(inst.node());
        for &e in &meta.outgoing {
            let em = decomp.edge(e);
            let ename = format!("{}→{}", meta.name, decomp.node(em.dst).name);
            let mut live: BTreeSet<Tuple> = BTreeSet::new();
            inst.container(decomp, e)
                .scan(&mut |k: &Tuple, child: &NodeRef| {
                    live.insert(k.clone());
                    stack.push(Arc::clone(child));
                    ControlFlow::Continue(())
                });
            let mut err: Option<String> = None;
            let mut resolved: BTreeSet<Tuple> = BTreeSet::new();
            inst.versions(decomp, e).scan(&mut |k: &Tuple, cell| {
                cell.truncate(floor, &guard);
                let stamps = cell.chain_stamps(&guard);
                if let Some(w) = stamps.windows(2).find(|w| w[0].0 <= w[1].0) {
                    err = Some(format!(
                        "version chain for {k:?} on {ename} of instance \
                         {:?} is not strictly decreasing: {} then {}",
                        inst.key(),
                        w[0].0,
                        w[1].0
                    ));
                    return ControlFlow::Break(());
                }
                if stamps.iter().any(|&(s, _)| s == u64::MAX) {
                    err = Some(format!(
                        "version chain for {k:?} on {ename} of instance \
                         {:?} holds a tentative stamp at quiescence",
                        inst.key()
                    ));
                    return ControlFlow::Break(());
                }
                let below = stamps.iter().filter(|&&(s, _)| s <= floor).count();
                if below > 1 {
                    err = Some(format!(
                        "version chain for {k:?} on {ename} of instance \
                         {:?} keeps {below} versions at or below the \
                         retirement floor {floor}",
                        inst.key()
                    ));
                    return ControlFlow::Break(());
                }
                if cell.resolve(now, &guard).is_some() {
                    resolved.insert(k.clone());
                }
                ControlFlow::Continue(())
            });
            if let Some(err) = err {
                return Err(err);
            }
            if resolved != live {
                let missing: Vec<_> = live.difference(&resolved).collect();
                let phantom: Vec<_> = resolved.difference(&live).collect();
                return Err(format!(
                    "version index for {ename} of instance {:?} disagrees \
                     with the container: unmirrored live keys {missing:?}, \
                     phantom version keys {phantom:?}",
                    inst.key()
                ));
            }
        }
    }
    Ok(())
}

/// Total number of versions across every version chain reachable from
/// `root` (test support; surfaced through
/// [`ConcurrentRelation::version_footprint`](crate::ConcurrentRelation::version_footprint)).
/// Unlike [`verify_versions`] this is pure observation: no truncation,
/// no invariant checks — so a retirement regression can compare
/// footprints before/after churn without perturbing the chains.
pub(crate) fn version_footprint(decomp: &Decomposition, root: &NodeRef) -> usize {
    let guard = relc_containers::epoch::pin();
    let mut total = 0usize;
    let mut seen: Vec<*const ()> = Vec::new();
    let mut stack: Vec<NodeRef> = vec![Arc::clone(root)];
    while let Some(inst) = stack.pop() {
        let ptr = Arc::as_ptr(&inst).cast::<()>();
        if seen.contains(&ptr) {
            continue;
        }
        seen.push(ptr);
        let meta = decomp.node(inst.node());
        for &e in &meta.outgoing {
            inst.container(decomp, e)
                .scan(&mut |_k: &Tuple, child: &NodeRef| {
                    stack.push(Arc::clone(child));
                    ControlFlow::Continue(())
                });
            inst.versions(decomp, e).scan(&mut |_k: &Tuple, cell| {
                total += cell.chain_stamps(&guard).len();
                ControlFlow::Continue(())
            });
        }
    }
    total
}

/// Resolves `key` through `src`'s version index for `edge` at snapshot
/// `snap`.
fn resolve_edge(
    decomp: &Decomposition,
    src: &NodeRef,
    edge: EdgeId,
    key: &Tuple,
    snap: u64,
    guard: &Guard,
) -> Option<NodeRef> {
    src.versions(decomp, edge)
        .lookup(key)
        .and_then(|cell| cell.resolve(snap, guard))
}

/// Runs a compiled query plan against the version indexes at snapshot
/// `snap`: the lock-free mirror of [`crate::exec::Executor::run_query`].
/// `Lock` steps are skipped and `SpecLookup` degenerates to a plain
/// version lookup — a snapshot reader needs neither locks nor
/// speculation validation, because the versions it resolves are
/// immutable once committed.
pub(crate) fn snapshot_query(
    decomp: &Decomposition,
    plan: &Plan,
    pattern: &Tuple,
    root: &NodeRef,
    snap: u64,
    guard: &Guard,
) -> Vec<Tuple> {
    let mut states = vec![QueryState::initial(
        decomp,
        pattern.clone(),
        Arc::clone(root),
    )];
    for step in &plan.steps {
        match step {
            PlanStep::Lock { .. } => continue,
            PlanStep::Lookup { edge } | PlanStep::SpecLookup { edge, .. } => {
                let em = decomp.edge(*edge);
                let mut out = Vec::with_capacity(states.len());
                for mut st in states {
                    let key = st.tuple.project(em.cols);
                    let src = st.instance(em.src).clone();
                    if let Some(child) = resolve_edge(decomp, &src, *edge, &key, snap, guard) {
                        st.nodes[em.dst.index()] = Some(child);
                        out.push(st);
                    }
                }
                states = out;
            }
            PlanStep::Scan { edge } => {
                let em = decomp.edge(*edge);
                let mut out = Vec::new();
                for st in states {
                    let src = st.instance(em.src).clone();
                    src.versions(decomp, *edge).scan(&mut |k: &Tuple, cell| {
                        if st.tuple.matches(k) {
                            if let Some(child) = cell.resolve(snap, guard) {
                                let mut next = st.clone();
                                next.tuple = st.tuple.union(k).expect("matches implies mergeable");
                                next.nodes[em.dst.index()] = Some(child);
                                out.push(next);
                            }
                        }
                        ControlFlow::Continue(())
                    });
                }
                states = out;
            }
            PlanStep::RangeScan { .. } => {
                unreachable!("plan_query never emits RangeScan; use snapshot_query_range")
            }
        }
        if states.is_empty() {
            return Vec::new();
        }
    }
    let set: BTreeSet<Tuple> = states
        .into_iter()
        .map(|st| st.tuple.project(plan.output))
        .collect();
    set.into_iter().collect()
}

/// Runs a compiled range plan against the version indexes at snapshot
/// `snap`: the lock-free mirror of
/// [`crate::exec::Executor::run_query_range`]. [`PlanStep::RangeScan`]
/// walks only the key interval of the edge's *version index* — a skip
/// list, so the walk is a bounded in-order traversal regardless of the
/// main container's kind (the step's `ordered` flag describes the locked
/// path; here every index is sorted) — resolving each cell at `snap`.
/// Output assembly is the shared canonical order, so a snapshot range
/// read answers exactly what a locked one would on the same cut.
pub(crate) fn snapshot_query_range(
    decomp: &Decomposition,
    plan: &Plan,
    pattern: &Tuple,
    range: &RangePattern,
    root: &NodeRef,
    snap: u64,
    guard: &Guard,
) -> Vec<Tuple> {
    let mut states = vec![QueryState::initial(
        decomp,
        pattern.clone(),
        Arc::clone(root),
    )];
    let last = plan.steps.len().saturating_sub(1);
    for (i, step) in plan.steps.iter().enumerate() {
        match step {
            PlanStep::Lock { .. } => continue,
            PlanStep::Lookup { edge } | PlanStep::SpecLookup { edge, .. } => {
                let em = decomp.edge(*edge);
                let mut out = Vec::with_capacity(states.len());
                for mut st in states {
                    let key = st.tuple.project(em.cols);
                    let src = st.instance(em.src).clone();
                    if let Some(child) = resolve_edge(decomp, &src, *edge, &key, snap, guard) {
                        st.nodes[em.dst.index()] = Some(child);
                        out.push(st);
                    }
                }
                states = out;
            }
            PlanStep::Scan { edge } => {
                let em = decomp.edge(*edge);
                let mut out = Vec::new();
                for st in states {
                    let src = st.instance(em.src).clone();
                    src.versions(decomp, *edge).scan(&mut |k: &Tuple, cell| {
                        if st.tuple.matches(k) {
                            if let Some(child) = cell.resolve(snap, guard) {
                                let mut next = st.clone();
                                next.tuple = st.tuple.union(k).expect("matches implies mergeable");
                                next.nodes[em.dst.index()] = Some(child);
                                out.push(next);
                            }
                        }
                        ControlFlow::Continue(())
                    });
                }
                states = out;
            }
            PlanStep::RangeScan { edge, .. } => {
                let em = decomp.edge(*edge);
                let (lo, hi) = range_key_bounds(range);
                // Top-k short circuit: the skip-list walk is ascending and
                // single-column keys carry one entry per value, so on the
                // final traversal each state's first k distinct output
                // projections contain every global top-k candidate (see
                // `Executor::range_scan_step`).
                let distinct_limit = if i == last { range.limit() } else { None };
                let mut out = Vec::new();
                for st in states {
                    let src = st.instance(em.src).clone();
                    let mut distinct: BTreeSet<Tuple> = BTreeSet::new();
                    src.versions(decomp, *edge).scan_range(
                        lo.as_ref(),
                        hi.as_ref(),
                        &mut |k: &Tuple, cell| {
                            if st.tuple.matches(k) {
                                if let Some(child) = cell.resolve(snap, guard) {
                                    let mut next = st.clone();
                                    next.tuple =
                                        st.tuple.union(k).expect("matches implies mergeable");
                                    next.nodes[em.dst.index()] = Some(child);
                                    if let Some(limit) = distinct_limit {
                                        distinct.insert(next.tuple.project(plan.output));
                                        out.push(next);
                                        if distinct.len() >= limit {
                                            return ControlFlow::Break(());
                                        }
                                    } else {
                                        out.push(next);
                                    }
                                }
                            }
                            ControlFlow::Continue(())
                        },
                    );
                }
                states = out;
            }
        }
        if states.is_empty() {
            return Vec::new();
        }
    }
    assemble_range_output(states.into_iter().map(|st| st.tuple), range, plan.output)
}

/// Short-circuiting existence check over the version indexes at snapshot
/// `snap`: the lock-free mirror of [`crate::exec::Executor::run_exists`].
pub(crate) fn snapshot_exists(
    decomp: &Decomposition,
    plan: &Plan,
    pattern: &Tuple,
    root: &NodeRef,
    snap: u64,
    guard: &Guard,
) -> bool {
    let st = QueryState::initial(decomp, pattern.clone(), Arc::clone(root));
    snapshot_exists_from(decomp, &plan.steps, st, snap, guard)
}

fn snapshot_exists_from(
    decomp: &Decomposition,
    steps: &[PlanStep],
    mut st: QueryState,
    snap: u64,
    guard: &Guard,
) -> bool {
    let Some((step, rest)) = steps.split_first() else {
        return true; // the state survived every step: a witness
    };
    match step {
        PlanStep::Lock { .. } => snapshot_exists_from(decomp, rest, st, snap, guard),
        PlanStep::Lookup { edge } | PlanStep::SpecLookup { edge, .. } => {
            let em = decomp.edge(*edge);
            let key = st.tuple.project(em.cols);
            let src = st.instance(em.src).clone();
            match resolve_edge(decomp, &src, *edge, &key, snap, guard) {
                Some(child) => {
                    st.nodes[em.dst.index()] = Some(child);
                    snapshot_exists_from(decomp, rest, st, snap, guard)
                }
                None => false,
            }
        }
        PlanStep::RangeScan { .. } => {
            unreachable!("plan_query never emits RangeScan; use snapshot_query_range")
        }
        PlanStep::Scan { edge } => {
            let em = decomp.edge(*edge);
            let src = st.instance(em.src).clone();
            let mut found = false;
            src.versions(decomp, *edge).scan(&mut |k: &Tuple, cell| {
                if !st.tuple.matches(k) {
                    return ControlFlow::Continue(());
                }
                let Some(child) = cell.resolve(snap, guard) else {
                    return ControlFlow::Continue(());
                };
                let mut next = st.clone();
                next.tuple = st.tuple.union(k).expect("matches implies mergeable");
                next.nodes[em.dst.index()] = Some(child);
                if snapshot_exists_from(decomp, rest, next, snap, guard) {
                    found = true;
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            });
            found
        }
    }
}
