//! The concurrent query language (§5.2, Fig. 4).
//!
//! Compiled relational operations are sequences of *plan steps* over sets of
//! *query states*. A query state pairs a partial tuple with a mapping from
//! decomposition nodes to node instances — exactly the paper's `(t, m)`
//! pairs. The step language mirrors Fig. 4's expressions: `lock`, `lookup`,
//! and `scan` (plus the combined speculative lookup of §4.5); `let`-bound
//! sequencing is implicit in the step list, and the matching `unlock`s of
//! the shrinking phase are emitted by the renderer and performed by the
//! engine's release-all at commit.

use std::fmt;

use relc_locks::LockMode;
use relc_spec::Tuple;

use crate::decomp::{Decomposition, EdgeId};
use crate::instance::NodeRef;

/// One step of a compiled plan (growing phase; unlocks are implicit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanStep {
    /// Acquire the physical locks implementing edge `edge`'s logical locks
    /// for every current query state, in `mode`.
    ///
    /// `presorted` records the §5.2 static analysis: when the states were
    /// produced by a sorted scan whose order coincides with the lock order,
    /// the runtime sort of the lock set can be elided.
    Lock {
        /// The edge whose logical locks are being implemented.
        edge: EdgeId,
        /// Requested mode.
        mode: LockMode,
        /// Lock set is already sorted (sort elision, §5.2).
        presorted: bool,
        /// Take every stripe at the host: required when the following
        /// traversal reads a whole container instance that striping splits
        /// (§4.4's conservative all-`k` acquisition).
        all_stripes: bool,
    },
    /// Traverse `edge` by point lookup: the edge's columns are already bound
    /// in every state.
    Lookup {
        /// The edge to traverse.
        edge: EdgeId,
    },
    /// Traverse `edge` by scanning its container, binding the edge's columns
    /// (filtered against any partial bindings).
    Scan {
        /// The edge to traverse.
        edge: EdgeId,
    },
    /// Traverse `edge` by a *bounded* range scan: the edge's single key
    /// column is the range column of a [`relc_spec::RangePattern`], so the
    /// interval over values is a contiguous interval of container keys.
    /// On a sorted container ([`ordered`](PlanStep::RangeScan::ordered))
    /// the traversal visits only the interval, in key order; elsewhere it
    /// degrades to a filtered full scan. The interval's bounds travel
    /// alongside the plan (steps are shapes, not instances — like the
    /// pattern tuple of every other step).
    RangeScan {
        /// The edge to traverse.
        edge: EdgeId,
        /// Whether the edge's container keeps sorted order (`sorted_scan`),
        /// making the traversal a bounded in-order walk whose output is in
        /// range order (enables limit short-circuiting downstream).
        ordered: bool,
    },
    /// §4.5: speculative point traversal of a concurrency-safe edge — guess
    /// via an unlocked lookup, lock the target (present) or the fallback
    /// stripe (absent), re-validate, restart the transaction on a wrong
    /// guess.
    SpecLookup {
        /// The edge to traverse.
        edge: EdgeId,
        /// Mode for the edge's logical lock.
        mode: LockMode,
    },
}

impl PlanStep {
    /// The edge this step concerns.
    pub fn edge(&self) -> EdgeId {
        match self {
            PlanStep::Lock { edge, .. }
            | PlanStep::Lookup { edge }
            | PlanStep::Scan { edge }
            | PlanStep::RangeScan { edge, .. }
            | PlanStep::SpecLookup { edge, .. } => *edge,
        }
    }

    /// Whether the step acquires locks.
    pub fn is_lock(&self) -> bool {
        matches!(self, PlanStep::Lock { .. } | PlanStep::SpecLookup { .. })
    }
}

/// A query state `(t, m)`: a partial tuple plus bindings from decomposition
/// nodes to node instances (§5.2).
#[derive(Debug, Clone)]
pub struct QueryState {
    /// The tuple accumulated so far (pattern plus bound columns).
    pub tuple: Tuple,
    /// `m`: per-node instance bindings (indexed by `NodeId`).
    pub nodes: Vec<Option<NodeRef>>,
}

impl QueryState {
    /// The initial state: the operation's pattern tuple with only the root
    /// instance bound.
    pub fn initial(decomp: &Decomposition, pattern: Tuple, root: NodeRef) -> Self {
        let mut nodes = vec![None; decomp.node_count()];
        nodes[decomp.root().index()] = Some(root);
        QueryState {
            tuple: pattern,
            nodes,
        }
    }

    /// The bound instance of `node`.
    ///
    /// # Panics
    ///
    /// Panics if the node is unbound — a planner invariant violation.
    pub fn instance(&self, node: crate::decomp::NodeId) -> &NodeRef {
        self.nodes[node.index()]
            .as_ref()
            .expect("planner invariant: node instance bound before use")
    }
}

/// Renders a plan in the paper's `let`-notation (§5.2), e.g.
///
/// ```text
/// let _ = lock(a, ρ) in
/// let b = scan(a, ρy) in
/// let c = scan(b, yz) in
/// let _ = unlock(a, ρ) in
/// c
/// ```
pub fn render_plan(decomp: &Decomposition, steps: &[PlanStep]) -> String {
    let edge_name = |e: EdgeId| {
        let em = decomp.edge(e);
        format!("{}{}", decomp.node(em.src).name, decomp.node(em.dst).name)
    };
    let mut out = String::new();
    let mut var = b'a';
    let mut current = var; // variable holding the current state set
    let mut locked: Vec<(EdgeId, u8)> = Vec::new();
    for step in steps {
        match step {
            PlanStep::Lock { edge, mode, .. } => {
                let host = &decomp
                    .node(crate::decomp::NodeId(
                        decomp.edge(*edge).src.0, // rendered below via placement-free form
                    ))
                    .name;
                let _ = host;
                out.push_str(&format!(
                    "let _ = lock{}({}, ψ({})) in\n",
                    if *mode == LockMode::Exclusive {
                        "!"
                    } else {
                        ""
                    },
                    current as char,
                    edge_name(*edge),
                ));
                locked.push((*edge, current));
            }
            PlanStep::SpecLookup { edge, mode } => {
                var += 1;
                out.push_str(&format!(
                    "let {} = spec-lock{}-lookup({}, {}) in\n",
                    var as char,
                    if *mode == LockMode::Exclusive {
                        "!"
                    } else {
                        ""
                    },
                    current as char,
                    edge_name(*edge),
                ));
                locked.push((*edge, current));
                current = var;
            }
            PlanStep::Lookup { edge } => {
                var += 1;
                out.push_str(&format!(
                    "let {} = lookup({}, {}) in\n",
                    var as char,
                    current as char,
                    edge_name(*edge)
                ));
                current = var;
            }
            PlanStep::Scan { edge } => {
                var += 1;
                out.push_str(&format!(
                    "let {} = scan({}, {}) in\n",
                    var as char,
                    current as char,
                    edge_name(*edge)
                ));
                current = var;
            }
            PlanStep::RangeScan { edge, ordered } => {
                var += 1;
                out.push_str(&format!(
                    "let {} = range-scan{}({}, {}) in\n",
                    var as char,
                    if *ordered { "" } else { "~" },
                    current as char,
                    edge_name(*edge)
                ));
                current = var;
            }
        }
    }
    for (edge, v) in locked.iter().rev() {
        out.push_str(&format!(
            "let _ = unlock({}, ψ({})) in\n",
            *v as char,
            edge_name(*edge)
        ));
    }
    out.push(current as char);
    out
}

/// A rendered, displayable plan.
#[derive(Debug, Clone)]
pub struct RenderedPlan(pub String);

impl fmt::Display for RenderedPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::library::{dcache, stick};
    use crate::instance::NodeInstance;
    use crate::placement::LockPlacement;
    use relc_containers::ContainerKind;

    #[test]
    fn initial_state_binds_root_only() {
        let d = stick(ContainerKind::TreeMap, ContainerKind::TreeMap);
        let p = LockPlacement::coarse(&d).unwrap();
        let root = NodeInstance::new(&d, &p, d.root(), Tuple::empty());
        let st = QueryState::initial(&d, Tuple::empty(), root);
        assert!(st.nodes[d.root().index()].is_some());
        assert_eq!(st.nodes.iter().filter(|n| n.is_some()).count(), 1);
        let _ = st.instance(d.root());
    }

    #[test]
    #[should_panic(expected = "planner invariant")]
    fn unbound_instance_access_panics() {
        let d = stick(ContainerKind::TreeMap, ContainerKind::TreeMap);
        let p = LockPlacement::coarse(&d).unwrap();
        let root = NodeInstance::new(&d, &p, d.root(), Tuple::empty());
        let st = QueryState::initial(&d, Tuple::empty(), root);
        let _ = st.instance(d.node_by_name("u").unwrap());
    }

    #[test]
    fn render_matches_paper_shape() {
        // The dcache full-iteration plan (2) from §5.2: lock root, scan ρy,
        // scan yz, unlock, return.
        let d = dcache();
        let ry = d.edge_between("ρ", "y").unwrap();
        let yz = d.edge_between("y", "z").unwrap();
        let steps = vec![
            PlanStep::Lock {
                edge: ry,
                mode: LockMode::Shared,
                presorted: false,
                all_stripes: false,
            },
            PlanStep::Scan { edge: ry },
            PlanStep::Lock {
                edge: yz,
                mode: LockMode::Shared,
                presorted: false,
                all_stripes: false,
            },
            PlanStep::Scan { edge: yz },
        ];
        let rendered = render_plan(&d, &steps);
        assert!(rendered.contains("scan(a, ρy)"), "{rendered}");
        assert!(rendered.contains("scan(b, yz)"), "{rendered}");
        assert!(rendered.contains("unlock"), "{rendered}");
        // Unlocks come in reverse order of locks.
        let first_unlock = rendered.find("unlock(b, ψ(yz))").unwrap();
        let second_unlock = rendered.find("unlock(a, ψ(ρy))").unwrap();
        assert!(first_unlock < second_unlock, "{rendered}");
    }

    #[test]
    fn step_accessors() {
        let d = stick(ContainerKind::TreeMap, ContainerKind::TreeMap);
        let ru = d.edge_between("ρ", "u").unwrap();
        let lock = PlanStep::Lock {
            edge: ru,
            mode: LockMode::Shared,
            presorted: true,
            all_stripes: false,
        };
        assert_eq!(lock.edge(), ru);
        assert!(lock.is_lock());
        assert!(!PlanStep::Scan { edge: ru }.is_lock());
        assert!(PlanStep::SpecLookup {
            edge: ru,
            mode: LockMode::Shared
        }
        .is_lock());
    }
}
