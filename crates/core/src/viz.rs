//! Graphviz (DOT) export of decompositions and lock placements — renders
//! the paper's Figs. 2(a) and 3 style diagrams from live objects: solid
//! edges for tree maps, dashed for concurrent hash containers, dotted for
//! singleton edges, with each edge labelled by its columns and its lock
//! placement (`ψ`).

use std::fmt::Write as _;

use relc_containers::ContainerKind;

use crate::decomp::Decomposition;
use crate::placement::LockPlacement;

fn edge_style(kind: ContainerKind) -> &'static str {
    // Matching the paper's legend: solid = TreeMap (and other
    // non-concurrent maps), dashed = concurrent containers, dotted =
    // singleton tuples.
    match kind {
        ContainerKind::Singleton => "dotted",
        ContainerKind::ConcurrentHashMap
        | ContainerKind::ConcurrentSkipListMap
        | ContainerKind::CopyOnWriteArrayList => "dashed",
        ContainerKind::HashMap | ContainerKind::TreeMap | ContainerKind::SplayTreeMap => "solid",
    }
}

/// Renders a decomposition as a DOT digraph.
///
/// # Examples
///
/// ```
/// use relc::decomp::library::stick;
/// use relc::viz::decomposition_dot;
/// use relc_containers::ContainerKind;
///
/// let d = stick(ContainerKind::HashMap, ContainerKind::TreeMap);
/// let dot = decomposition_dot(&d);
/// assert!(dot.starts_with("digraph decomposition"));
/// assert!(dot.contains("ρ"));
/// ```
pub fn decomposition_dot(decomp: &Decomposition) -> String {
    let cat = decomp.schema().catalog();
    let mut out = String::from("digraph decomposition {\n  rankdir=TB;\n  node [shape=circle];\n");
    for (_, n) in decomp.nodes() {
        let _ = writeln!(
            out,
            "  \"{}\" [xlabel=\"{} ▷ {}\"];",
            n.name,
            cat.render_set(n.key_cols),
            cat.render_set(n.residual)
        );
    }
    for (_, e) in decomp.edges() {
        let _ = writeln!(
            out,
            "  \"{}\" -> \"{}\" [label=\"{}\\n{}\", style={}];",
            decomp.node(e.src).name,
            decomp.node(e.dst).name,
            cat.render_set(e.cols),
            e.container,
            edge_style(e.container),
        );
    }
    out.push_str("}\n");
    out
}

/// Renders a decomposition *with its lock placement* as a DOT digraph:
/// every edge label carries the `ψ` annotation of Fig. 3 (host node, stripe
/// columns, speculation).
pub fn placement_dot(placement: &LockPlacement) -> String {
    let decomp = placement.decomposition();
    let cat = decomp.schema().catalog();
    let mut out = format!(
        "digraph placement {{\n  label=\"{}\";\n  rankdir=TB;\n  node [shape=circle];\n",
        placement.name()
    );
    for (_, n) in decomp.nodes() {
        let _ = writeln!(out, "  \"{}\";", n.name);
    }
    for (e, em) in decomp.edges() {
        let ep = placement.edge(e);
        let host = &decomp.node(ep.host).name;
        let k = placement.stripe_count(ep.host);
        let mut psi = if ep.speculative {
            format!("ψ: target | {host}")
        } else {
            format!("ψ: {host}")
        };
        if k > 1 && !ep.stripe_by.is_empty() {
            let _ = write!(psi, "[{} mod {}]", cat.render_set(ep.stripe_by), k);
        }
        let _ = writeln!(
            out,
            "  \"{}\" -> \"{}\" [label=\"{}\\n{}\", style={}];",
            decomp.node(em.src).name,
            decomp.node(em.dst).name,
            cat.render_set(em.cols),
            psi,
            edge_style(em.container),
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::library::{dcache, diamond};
    use relc_containers::ContainerKind;

    #[test]
    fn dcache_dot_matches_figure2_legend() {
        let d = dcache();
        let dot = decomposition_dot(&d);
        // Tree edges solid, hash shortcut dashed, child singleton dotted.
        assert!(dot.contains("style=solid"), "{dot}");
        assert!(dot.contains("style=dashed"), "{dot}");
        assert!(dot.contains("style=dotted"), "{dot}");
        assert!(dot.contains("\"ρ\" -> \"y\""), "{dot}");
        assert!(dot.contains("{parent, name}"), "{dot}");
        // Node types rendered as A ▷ B.
        assert!(dot.contains("▷"), "{dot}");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn speculative_placement_dot_shows_targets() {
        let d = diamond(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
        let p = LockPlacement::speculative(&d, 8).unwrap();
        let dot = placement_dot(&p);
        assert_eq!(dot.matches("ψ: target |").count(), 2, "{dot}");
        assert!(dot.contains("mod 8"), "{dot}");
        assert!(dot.contains("label=\"speculative(8)\""), "{dot}");
    }

    #[test]
    fn coarse_placement_dot_pins_everything_to_root() {
        let d = dcache();
        let p = LockPlacement::coarse(&d).unwrap();
        let dot = placement_dot(&p);
        assert_eq!(dot.matches("ψ: ρ").count(), d.edge_count(), "{dot}");
    }
}
