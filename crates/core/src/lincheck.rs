//! A Wing–Gong style linearizability checker for concurrent-relation
//! histories.
//!
//! The paper requires that "the implementations of the relational operations
//! are linearizable" (§2). This module provides the test-side machinery: a
//! recorder for per-thread operation histories (invocation/response
//! timestamps plus observed results) and an exhaustive checker that searches
//! for a sequential order, consistent with real time, under which the §2
//! semantics explain every observed result.
//!
//! Complexity is exponential in the number of overlapping operations;
//! intended for small stress histories (a few dozen operations).

use std::collections::{BTreeSet, HashSet};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use relc_spec::{ColumnSet, RangePattern, RelationSchema, Tuple, Value};

/// One completed operation with its observed result.
#[derive(Debug, Clone)]
pub enum OpRecord {
    /// `insert r s t` returning whether the tuple was inserted.
    Insert {
        /// Key pattern `s`.
        s: Tuple,
        /// Payload `t`.
        t: Tuple,
        /// Observed result.
        result: bool,
    },
    /// `remove r s` returning the number of tuples removed.
    Remove {
        /// Key pattern `s`.
        s: Tuple,
        /// Observed result.
        result: usize,
    },
    /// `query r s C` returning the sorted projection.
    Query {
        /// Pattern `s`.
        s: Tuple,
        /// Projection columns `C`.
        cols: ColumnSet,
        /// Observed result (sorted, deduplicated).
        result: Vec<Tuple>,
    },
    /// `query_range r s ρ C` returning the range-ordered projection.
    Range {
        /// Pattern `s`.
        s: Tuple,
        /// The interval predicate over one column (plus optional limit).
        range: RangePattern,
        /// Projection columns `C`.
        cols: ColumnSet,
        /// Observed result (ordered by (range value, projection),
        /// deduplicated, capped at the range's limit).
        result: Vec<Tuple>,
    },
    /// `update r s t` returning the replaced tuple.
    Update {
        /// Key pattern `s`.
        s: Tuple,
        /// Assignment `t` (right-biased override).
        t: Tuple,
        /// Observed result: the replaced tuple, if one matched.
        result: Option<Tuple>,
    },
    /// A multi-operation transaction: the inner operations (with their
    /// observed results) take effect atomically, as one linearization
    /// point.
    Txn {
        /// The transaction's operations, in program order.
        ops: Vec<OpRecord>,
    },
    /// `insert_all r [(s, t)]`: the sequential put-if-absent fold over the
    /// rows, taking effect atomically as one linearization point.
    InsertAll {
        /// The batch rows, in order.
        rows: Vec<(Tuple, Tuple)>,
        /// Observed per-row results.
        results: Vec<bool>,
    },
    /// `remove_all r [s]`: the sequential removal fold over the keys,
    /// taking effect atomically as one linearization point.
    RemoveAll {
        /// The batch keys, in order.
        keys: Vec<Tuple>,
        /// Observed per-key outcomes (whether each key's tuple existed
        /// and was removed; duplicates of a removed key observe `false`).
        results: Vec<bool>,
    },
    /// A live migration ([`crate::ConcurrentRelation::migrate_to`] /
    /// [`crate::ShardedRelation::migrate_to`]): swaps the physical
    /// representation while the *abstract* relation is unchanged — the
    /// identity on the model state. Recording it in a concurrent history
    /// still constrains the search (the checker must find a total order
    /// where every read before and after the cutover is explained by the
    /// same evolving contents, i.e. the cutover neither lost, duplicated,
    /// nor invented tuples).
    Migrate,
}

/// A completed operation with real-time interval.
#[derive(Debug, Clone)]
pub struct HistoryEvent {
    /// Invocation timestamp (ns from the recorder's epoch).
    pub invoke_ns: u64,
    /// Response timestamp.
    pub respond_ns: u64,
    /// The operation and its result.
    pub op: OpRecord,
}

/// Thread-safe recorder of a concurrent history.
#[derive(Debug)]
pub struct HistoryRecorder {
    epoch: Instant,
    events: Mutex<Vec<HistoryEvent>>,
}

impl HistoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Arc<Self> {
        Arc::new(HistoryRecorder {
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
        })
    }

    /// Times `f` and records its result as one event. The closure returns
    /// the operation record describing what happened.
    pub fn record<R>(&self, f: impl FnOnce() -> (R, OpRecord)) -> R {
        let invoke_ns = self.epoch.elapsed().as_nanos() as u64;
        let (r, op) = f();
        let respond_ns = self.epoch.elapsed().as_nanos() as u64;
        self.events.lock().expect("recorder").push(HistoryEvent {
            invoke_ns,
            respond_ns,
            op,
        });
        r
    }

    /// Extracts the recorded history.
    pub fn into_history(self: Arc<Self>) -> Vec<HistoryEvent> {
        Arc::try_unwrap(self)
            .expect("all recording threads joined")
            .events
            .into_inner()
            .expect("recorder")
    }
}

/// Applies `op` to the model state; returns `false` if the observed result
/// contradicts the §2 semantics.
fn apply(state: &mut BTreeSet<Tuple>, op: &OpRecord) -> bool {
    match op {
        OpRecord::Insert { s, t, result } => {
            let exists = state.iter().any(|u| u.extends(s));
            if exists {
                !*result
            } else {
                if !*result {
                    return false;
                }
                let x = s.union(t).expect("recorded inserts have disjoint domains");
                state.insert(x);
                true
            }
        }
        OpRecord::Remove { s, result } => {
            let before = state.len();
            state.retain(|u| !u.extends(s));
            before - state.len() == *result
        }
        OpRecord::Query { s, cols, result } => {
            let got: BTreeSet<Tuple> = state
                .iter()
                .filter(|u| u.extends(s))
                .map(|u| u.project(*cols))
                .collect();
            got.iter().cloned().collect::<Vec<_>>() == *result
        }
        OpRecord::Range {
            s,
            range,
            cols,
            result,
        } => {
            let mut matched: Vec<(Value, Tuple)> = state
                .iter()
                .filter(|u| u.extends(s))
                .filter_map(|u| {
                    let v = u.get(range.col()).filter(|v| range.contains(v))?.clone();
                    Some((v, u.project(*cols)))
                })
                .collect();
            matched.sort();
            let mut seen = BTreeSet::new();
            let mut expect = Vec::new();
            for (_, p) in matched {
                if seen.insert(p.clone()) {
                    expect.push(p);
                    if range.limit().is_some_and(|k| expect.len() >= k) {
                        break;
                    }
                }
            }
            expect == *result
        }
        OpRecord::Update { s, t, result } => match result {
            Some(old) => {
                if old.extends(s) && state.remove(old) {
                    state.insert(old.override_with(t));
                    true
                } else {
                    false
                }
            }
            None => !state.iter().any(|u| u.extends(s)),
        },
        // Representation change only: the abstract state is untouched, so
        // any placement in the order explains it.
        OpRecord::Migrate => true,
        OpRecord::Txn { ops } => {
            // All-or-nothing: the sub-operations must be explainable in
            // program order from this linearization point.
            let mut scratch = state.clone();
            if ops.iter().all(|op| apply(&mut scratch, op)) {
                *state = scratch;
                true
            } else {
                false
            }
        }
        OpRecord::InsertAll { rows, results } => {
            // The §2 semantics of a batch is the sequential fold; each
            // row's observed flag must match put-if-absent against the
            // state the earlier rows built.
            if rows.len() != results.len() {
                return false;
            }
            let mut scratch = state.clone();
            for ((s, t), &r) in rows.iter().zip(results) {
                let exists = scratch.iter().any(|u| u.extends(s));
                if exists == r {
                    return false;
                }
                if r {
                    let x = s.union(t).expect("recorded inserts have disjoint domains");
                    scratch.insert(x);
                }
            }
            *state = scratch;
            true
        }
        OpRecord::RemoveAll { keys, results } => {
            // The fold semantics per key: the observed flag must match
            // whether anything matched against the state the earlier keys
            // left behind.
            if keys.len() != results.len() {
                return false;
            }
            let mut scratch = state.clone();
            for (s, &r) in keys.iter().zip(results) {
                let before = scratch.len();
                scratch.retain(|u| !u.extends(s));
                if (before != scratch.len()) != r {
                    return false;
                }
            }
            *state = scratch;
            true
        }
    }
}

/// Checks whether `history` is linearizable with respect to the §2 relation
/// semantics, starting from an empty relation.
///
/// Uses Wing–Gong search: repeatedly pick a minimal operation (one invoked
/// before every pending operation's response), apply it to the model, and
/// backtrack on contradiction, memoizing failed (chosen-set, state) pairs.
pub fn check_linearizable(_schema: &Arc<RelationSchema>, history: &[HistoryEvent]) -> bool {
    assert!(
        history.len() <= 63,
        "checker is exponential; keep histories small"
    );
    let n = history.len();
    if n == 0 {
        return true;
    }
    let full: u64 = (1u64 << n) - 1;
    let mut failed: HashSet<(u64, u64)> = HashSet::new();

    fn state_hash(state: &BTreeSet<Tuple>) -> u64 {
        // Order-independent-ish cheap hash over the sorted contents.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for t in state {
            h = h.rotate_left(7) ^ t.stable_hash_of(t.dom());
        }
        h
    }

    fn search(
        history: &[HistoryEvent],
        done: u64,
        full: u64,
        state: &mut BTreeSet<Tuple>,
        failed: &mut HashSet<(u64, u64)>,
    ) -> bool {
        if done == full {
            return true;
        }
        let key = (done, state_hash(state));
        if failed.contains(&key) {
            return false;
        }
        // Minimal response time among pending ops.
        let min_respond = history
            .iter()
            .enumerate()
            .filter(|(i, _)| done & (1 << i) == 0)
            .map(|(_, e)| e.respond_ns)
            .min()
            .expect("pending ops exist");
        for (i, e) in history.iter().enumerate() {
            if done & (1 << i) != 0 {
                continue;
            }
            // Real-time constraint: `e` may linearize next only if no
            // pending op responded before `e` was invoked.
            if e.invoke_ns > min_respond {
                continue;
            }
            let saved = state.clone();
            if apply(state, &e.op) && search(history, done | (1 << i), full, state, failed) {
                return true;
            }
            *state = saved;
        }
        failed.insert(key);
        false
    }

    let mut state = BTreeSet::new();
    search(history, 0, full, &mut state, &mut failed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relc_spec::{library, Value};

    fn schema() -> Arc<RelationSchema> {
        library::graph_schema()
    }

    fn edge(s: i64, d: i64) -> Tuple {
        schema()
            .tuple(&[("src", Value::from(s)), ("dst", Value::from(d))])
            .unwrap()
    }

    fn weight(w: i64) -> Tuple {
        schema().tuple(&[("weight", Value::from(w))]).unwrap()
    }

    fn ev(invoke: u64, respond: u64, op: OpRecord) -> HistoryEvent {
        HistoryEvent {
            invoke_ns: invoke,
            respond_ns: respond,
            op,
        }
    }

    #[test]
    fn empty_and_sequential_histories() {
        assert!(check_linearizable(&schema(), &[]));
        let h = vec![
            ev(
                0,
                1,
                OpRecord::Insert {
                    s: edge(1, 2),
                    t: weight(9),
                    result: true,
                },
            ),
            ev(
                2,
                3,
                OpRecord::Insert {
                    s: edge(1, 2),
                    t: weight(7),
                    result: false,
                },
            ),
            ev(
                4,
                5,
                OpRecord::Remove {
                    s: edge(1, 2),
                    result: 1,
                },
            ),
            ev(
                6,
                7,
                OpRecord::Remove {
                    s: edge(1, 2),
                    result: 0,
                },
            ),
        ];
        assert!(check_linearizable(&schema(), &h));
    }

    #[test]
    fn detects_non_linearizable_sequential_result() {
        // Remove reports success on an empty relation: impossible.
        let h = vec![ev(
            0,
            1,
            OpRecord::Remove {
                s: edge(1, 2),
                result: 1,
            },
        )];
        assert!(!check_linearizable(&schema(), &h));
    }

    #[test]
    fn overlapping_inserts_one_winner() {
        // Two overlapping put-if-absent inserts on the same key: exactly one
        // may win, regardless of real-time order.
        let h = vec![
            ev(
                0,
                10,
                OpRecord::Insert {
                    s: edge(1, 2),
                    t: weight(1),
                    result: true,
                },
            ),
            ev(
                1,
                9,
                OpRecord::Insert {
                    s: edge(1, 2),
                    t: weight(2),
                    result: false,
                },
            ),
        ];
        assert!(check_linearizable(&schema(), &h));
        let h2 = vec![
            ev(
                0,
                10,
                OpRecord::Insert {
                    s: edge(1, 2),
                    t: weight(1),
                    result: true,
                },
            ),
            ev(
                1,
                9,
                OpRecord::Insert {
                    s: edge(1, 2),
                    t: weight(2),
                    result: true,
                },
            ),
        ];
        assert!(
            !check_linearizable(&schema(), &h2),
            "two winners is a violation"
        );
    }

    #[test]
    fn real_time_order_is_respected() {
        // A query that completes *before* an insert begins must not see it.
        let cols = schema().column_set(&["weight"]).unwrap();
        let h = vec![
            ev(
                0,
                1,
                OpRecord::Query {
                    s: edge(1, 2),
                    cols,
                    result: vec![weight(5)],
                },
            ),
            ev(
                2,
                3,
                OpRecord::Insert {
                    s: edge(1, 2),
                    t: weight(5),
                    result: true,
                },
            ),
        ];
        assert!(
            !check_linearizable(&schema(), &h),
            "query preceding the insert in real time cannot observe it"
        );
        // If they overlap, it is fine.
        let h2 = vec![
            ev(
                0,
                10,
                OpRecord::Query {
                    s: edge(1, 2),
                    cols,
                    result: vec![weight(5)],
                },
            ),
            ev(
                1,
                9,
                OpRecord::Insert {
                    s: edge(1, 2),
                    t: weight(5),
                    result: true,
                },
            ),
        ];
        assert!(check_linearizable(&schema(), &h2));
    }

    #[test]
    fn update_semantics_are_checked() {
        // Sequential: insert then update; the update must report the old
        // tuple exactly.
        let full = edge(1, 2).union(&weight(9)).unwrap();
        let h = vec![
            ev(
                0,
                1,
                OpRecord::Insert {
                    s: edge(1, 2),
                    t: weight(9),
                    result: true,
                },
            ),
            ev(
                2,
                3,
                OpRecord::Update {
                    s: edge(1, 2),
                    t: weight(5),
                    result: Some(full.clone()),
                },
            ),
            ev(
                4,
                5,
                OpRecord::Remove {
                    s: edge(1, 2),
                    result: 1,
                },
            ),
        ];
        assert!(check_linearizable(&schema(), &h));
        // Claiming the wrong old value is a violation.
        let wrong = edge(1, 2).union(&weight(7)).unwrap();
        let h2 = vec![
            ev(
                0,
                1,
                OpRecord::Insert {
                    s: edge(1, 2),
                    t: weight(9),
                    result: true,
                },
            ),
            ev(
                2,
                3,
                OpRecord::Update {
                    s: edge(1, 2),
                    t: weight(5),
                    result: Some(wrong),
                },
            ),
        ];
        assert!(!check_linearizable(&schema(), &h2));
        // Updating a missing tuple must observe None.
        let h3 = vec![ev(
            0,
            1,
            OpRecord::Update {
                s: edge(1, 2),
                t: weight(5),
                result: Some(full),
            },
        )];
        assert!(!check_linearizable(&schema(), &h3));
        let h4 = vec![ev(
            0,
            1,
            OpRecord::Update {
                s: edge(1, 2),
                t: weight(5),
                result: None,
            },
        )];
        assert!(check_linearizable(&schema(), &h4));
    }

    #[test]
    fn transactions_are_single_linearization_points() {
        let full = edge(1, 2).union(&weight(9)).unwrap();
        // A transfer transaction overlapping a query: the query may see
        // the state before or after the whole transaction, never between
        // its operations.
        let txn = OpRecord::Txn {
            ops: vec![
                OpRecord::Remove {
                    s: edge(1, 2),
                    result: 1,
                },
                OpRecord::Insert {
                    s: edge(3, 4),
                    t: weight(9),
                    result: true,
                },
            ],
        };
        let cols = schema().column_set(&["weight"]).unwrap();
        let h = vec![
            ev(
                0,
                1,
                OpRecord::Insert {
                    s: edge(1, 2),
                    t: weight(9),
                    result: true,
                },
            ),
            ev(2, 10, txn.clone()),
            // Overlapping query sees the pre-state on (1,2)...
            ev(
                3,
                9,
                OpRecord::Query {
                    s: edge(1, 2),
                    cols,
                    result: vec![weight(9)],
                },
            ),
        ];
        assert!(check_linearizable(&schema(), &h));
        // ...but the *intermediate* state — the relation empty between the
        // remove and the insert — must never be observable: a full query
        // always sees exactly one tuple.
        let all = schema().columns();
        let h2 = vec![
            ev(
                0,
                1,
                OpRecord::Insert {
                    s: edge(1, 2),
                    t: weight(9),
                    result: true,
                },
            ),
            ev(2, 10, txn),
            ev(
                3,
                9,
                OpRecord::Query {
                    s: Tuple::empty(),
                    cols: all,
                    result: vec![],
                },
            ),
        ];
        assert!(!check_linearizable(&schema(), &h2));
        // Seeing the pre- or post-state of the transaction is fine.
        let post = edge(3, 4).union(&weight(9)).unwrap();
        for observed in [full, post] {
            let h3 = vec![
                ev(
                    0,
                    1,
                    OpRecord::Insert {
                        s: edge(1, 2),
                        t: weight(9),
                        result: true,
                    },
                ),
                ev(
                    2,
                    10,
                    OpRecord::Txn {
                        ops: vec![
                            OpRecord::Remove {
                                s: edge(1, 2),
                                result: 1,
                            },
                            OpRecord::Insert {
                                s: edge(3, 4),
                                t: weight(9),
                                result: true,
                            },
                        ],
                    },
                ),
                ev(
                    3,
                    9,
                    OpRecord::Query {
                        s: Tuple::empty(),
                        cols: all,
                        result: vec![observed],
                    },
                ),
            ];
            assert!(check_linearizable(&schema(), &h3));
        }
    }

    #[test]
    fn batch_records_are_single_linearization_points() {
        let cols = schema().columns();
        // An insert_all of two rows overlapping a full query: the query may
        // see zero or two of the batch's tuples, never exactly one.
        let batch = OpRecord::InsertAll {
            rows: vec![(edge(1, 2), weight(1)), (edge(3, 4), weight(2))],
            results: vec![true, true],
        };
        let one = edge(1, 2).union(&weight(1)).unwrap();
        let both = vec![
            edge(1, 2).union(&weight(1)).unwrap(),
            edge(3, 4).union(&weight(2)).unwrap(),
        ];
        for (observed, ok) in [
            (vec![], true),
            (both.clone(), true),
            (vec![one.clone()], false),
        ] {
            let h = vec![
                ev(0, 10, batch.clone()),
                ev(
                    1,
                    9,
                    OpRecord::Query {
                        s: Tuple::empty(),
                        cols,
                        result: observed,
                    },
                ),
            ];
            assert_eq!(check_linearizable(&schema(), &h), ok);
        }
        // A duplicate pattern inside one batch must lose to the first row.
        let dup_ok = OpRecord::InsertAll {
            rows: vec![(edge(1, 2), weight(1)), (edge(1, 2), weight(9))],
            results: vec![true, false],
        };
        assert!(check_linearizable(&schema(), &[ev(0, 1, dup_ok)]));
        let dup_bad = OpRecord::InsertAll {
            rows: vec![(edge(1, 2), weight(1)), (edge(1, 2), weight(9))],
            results: vec![true, true],
        };
        assert!(!check_linearizable(&schema(), &[ev(0, 1, dup_bad)]));
        // remove_all reports the sequential fold per key (duplicates of a
        // removed key observe false).
        let h = vec![
            ev(0, 10, batch),
            ev(
                11,
                12,
                OpRecord::RemoveAll {
                    keys: vec![edge(1, 2), edge(1, 2), edge(3, 4), edge(5, 6)],
                    results: vec![true, false, true, false],
                },
            ),
        ];
        assert!(check_linearizable(&schema(), &h));
        let h_bad = vec![ev(
            0,
            1,
            OpRecord::RemoveAll {
                keys: vec![edge(1, 2)],
                results: vec![true],
            },
        )];
        assert!(
            !check_linearizable(&schema(), &h_bad),
            "removal from an empty relation cannot succeed"
        );
    }

    #[test]
    fn recorder_round_trip() {
        let rec = HistoryRecorder::new();
        rec.record(|| {
            (
                (),
                OpRecord::Insert {
                    s: edge(1, 2),
                    t: weight(1),
                    result: true,
                },
            )
        });
        rec.record(|| {
            (
                (),
                OpRecord::Remove {
                    s: edge(1, 2),
                    result: 1,
                },
            )
        });
        let hist = rec.into_history();
        assert_eq!(hist.len(), 2);
        assert!(hist[0].respond_ns <= hist[1].invoke_ns);
        assert!(check_linearizable(&schema(), &hist));
    }
}
