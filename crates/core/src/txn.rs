//! Multi-operation transactions over a synthesized relation (§4.2).
//!
//! The paper's serializability argument is per-*transaction*, not
//! per-operation: any sequence of well-locked operations that acquires
//! all of its locks before releasing any of them (two-phase) is
//! serializable, and with the §5.1 ordered/try-restart protocol it is
//! also deadlock-free. The seed implementation only exposed that power
//! one operation at a time; this module makes the transaction the unit
//! of locking.
//!
//! A [`Transaction`] borrows its relation and holds **one**
//! [`TwoPhaseEngine`] across every operation invoked through it. Locks
//! accumulate until the closure passed to
//! [`ConcurrentRelation::transaction`] returns; only then does the engine
//! release (commit). When any operation inside the closure demands a
//! restart (out-of-order lock contention, a shared→exclusive upgrade, a
//! failed speculation), the *whole closure* re-runs from scratch against
//! a clean lock state — that is what makes read-modify-write sequences
//! atomic: the values read before the restart are discarded along with
//! the locks.
//!
//! # Write compensation
//!
//! Operations apply their container writes eagerly (later operations in
//! the same transaction must see them), so a restart in operation *k*
//! must first undo the writes of operations *1..k*. The transaction keeps
//! an undo log of structural inverses (insert ⟷ unlink) and replays it in
//! reverse before releasing any lock. Because the log is replayed while
//! every lock of the original operations is still held, and each
//! operation pre-acquires the few extra tokens its inverse could need
//! (see [`Executor::run_insert`]'s [`InsertUndo`]), compensation itself
//! can never restart — enforced, not assumed: a restarting compensation
//! panics rather than release locks around a half-applied transaction.
//!
//! # Example
//!
//! ```
//! use relc::{ConcurrentRelation, decomp, placement::LockPlacement};
//! use relc_containers::ContainerKind;
//! use relc_spec::Value;
//!
//! let d = decomp::library::kv(ContainerKind::ConcurrentHashMap);
//! let p = LockPlacement::striped_root(&d, 16)?;
//! let accounts = ConcurrentRelation::new(d.clone(), p)?;
//! let schema = d.schema();
//! let key = |k: i64| schema.tuple(&[("key", Value::from(k))]).unwrap();
//! let val = |v: i64| schema.tuple(&[("value", Value::from(v))]).unwrap();
//! accounts.insert(&key(1), &val(100))?;
//! accounts.insert(&key(2), &val(0))?;
//!
//! // Atomically move 30 from account 1 to account 2: impossible with
//! // single-shot operations, trivial in a transaction.
//! let vcol = schema.column("value")?;
//! accounts.transaction(|tx| {
//!     let from = tx.update(&key(1), &val(70))?.expect("account 1 exists");
//!     assert_eq!(from.get(vcol), Some(&Value::from(100)));
//!     tx.update(&key(2), &val(30))?;
//!     Ok(())
//! })?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`ConcurrentRelation::transaction`]: crate::ConcurrentRelation::transaction
//! [`TwoPhaseEngine`]: relc_locks::TwoPhaseEngine
//! [`Executor::run_insert`]: crate::exec::Executor::run_insert

use std::fmt;
use std::sync::Arc;

use relc_locks::MustRestart;
use relc_spec::{ColumnSet, SpecError, Tuple};

use crate::error::CoreError;
use crate::exec::{Executor, InsertUndo};
use crate::planner::{InsertPlan, RemovePlan, UpdatePlan};
use crate::relation::{ConcurrentRelation, Repr};

/// Why a transactional operation did not return a value.
///
/// Closures passed to [`ConcurrentRelation::transaction`] should
/// propagate this with `?`: [`TxnError::Restart`] is consumed by the
/// transaction loop (the closure re-runs), while [`TxnError::Core`]
/// aborts the transaction — its effects are rolled back — and surfaces to
/// the caller.
///
/// [`ConcurrentRelation::transaction`]: crate::ConcurrentRelation::transaction
#[derive(Debug)]
pub enum TxnError {
    /// The lock engine demands a whole-transaction restart. Internal
    /// control flow: never escapes [`ConcurrentRelation::transaction`].
    ///
    /// [`ConcurrentRelation::transaction`]: crate::ConcurrentRelation::transaction
    Restart(MustRestart),
    /// The transaction aborts with an error; all of its effects are
    /// undone before the error is returned.
    Core(CoreError),
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::Restart(r) => write!(f, "{r}"),
            TxnError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TxnError {}

impl From<MustRestart> for TxnError {
    fn from(r: MustRestart) -> Self {
        TxnError::Restart(r)
    }
}

impl From<CoreError> for TxnError {
    fn from(e: CoreError) -> Self {
        TxnError::Core(e)
    }
}

impl From<SpecError> for TxnError {
    fn from(e: SpecError) -> Self {
        TxnError::Core(CoreError::Spec(e))
    }
}

/// One applied operation, recorded as its API arguments for the
/// write-ahead log's redo stream. Captured only when the relation has a
/// WAL attached (see [`Transaction::new`]); replay re-runs the same calls
/// through a fresh transaction, so the redo record needs nothing beyond
/// what the caller originally passed.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum RedoOp {
    /// `insert r s t` that actually inserted.
    Insert(Tuple, Tuple),
    /// `remove r s` that actually removed.
    Remove(Tuple),
    /// `update r s t` that found (and replaced) a tuple.
    Update(Tuple, Tuple),
}

/// A structural inverse recorded for one applied operation.
enum UndoOp {
    /// Inverse of an insert: unlink the tuple.
    Unlink { plan: Arc<RemovePlan>, tuple: Tuple },
    /// Inverse of a removal: re-insert the tuple.
    Reinsert { plan: Arc<InsertPlan>, tuple: Tuple },
    /// Inverse of an in-place update: swap the touched entries back from
    /// `new` to `old` (holds the old values, not a structural
    /// unlink/re-insert pair). Replayed under the locks of the forward
    /// pass, it acquires nothing and can never restart.
    WriteBack {
        plan: Arc<UpdatePlan>,
        old: Tuple,
        new: Tuple,
    },
}

/// An open multi-operation transaction on a [`ConcurrentRelation`].
///
/// Created by [`ConcurrentRelation::transaction`]; every operation runs
/// under the transaction's single two-phase lock scope and sees the
/// effects of the transaction's earlier operations. See the
/// [module docs](self) for semantics.
///
/// [`ConcurrentRelation::transaction`]: crate::ConcurrentRelation::transaction
pub struct Transaction<'t> {
    rel: &'t ConcurrentRelation,
    /// The representation this attempt is pinned to (captured by the
    /// transaction loop before the attempt starts; the loop validates at
    /// commit that it is still the relation's current one).
    repr: &'t Repr,
    exec: Executor<'t>,
    undo: Vec<UndoOp>,
    /// Applied operations in order, for the WAL's redo record. Empty
    /// (never pushed, no allocation) unless the relation has a WAL.
    redo: Vec<RedoOp>,
    /// Whether to capture [`RedoOp`]s — true exactly when the relation
    /// has a WAL attached. Unlike undo, redo is captured even in
    /// single-shot mode: the record is what recovery replays.
    log_redo: bool,
    len_delta: isize,
    single_shot: bool,
    saw_restart: bool,
}

impl<'t> Transaction<'t> {
    pub(crate) fn new(
        rel: &'t ConcurrentRelation,
        repr: &'t Repr,
        exec: Executor<'t>,
        single_shot: bool,
    ) -> Self {
        Transaction {
            rel,
            repr,
            exec,
            undo: Vec::new(),
            redo: Vec::new(),
            log_redo: rel.has_wal(),
            len_delta: 0,
            single_shot,
            saw_restart: false,
        }
    }

    /// Records any [`MustRestart`] an operation produced before handing it
    /// to the closure. A closure that swallows the error and returns `Ok`
    /// would otherwise commit a half-applied transaction (e.g. an update
    /// whose unlink succeeded but whose re-insert restarted); the commit
    /// path checks [`Transaction::needs_restart`] and rolls back and
    /// retries instead, so the discipline is enforced, not just
    /// documented.
    fn track<T>(&mut self, r: Result<T, MustRestart>) -> Result<T, TxnError> {
        if r.is_err() {
            self.saw_restart = true;
        }
        r.map_err(TxnError::from)
    }

    /// Whether any operation of this transaction demanded a restart. Once
    /// set, the transaction must not commit, whatever the closure returns.
    pub(crate) fn needs_restart(&self) -> bool {
        self.saw_restart
    }

    /// Demotes every future lock acquisition of this transaction to a
    /// *try* (restart on contention, never block). The sharding layer
    /// calls this when the enclosing cross-shard transaction already holds
    /// locks under a higher shard index, so blocking here would sit
    /// outside the global (shard, token) order — see
    /// [`crate::shard::ShardedTransaction`].
    pub(crate) fn force_try_locks(&mut self) {
        self.exec.set_try_only();
    }

    /// The relation this transaction operates on.
    ///
    /// Only for reading metadata (schema, columns): operations on the
    /// relation inside the closure must go through the transaction —
    /// single-shot calls there self-deadlock (and panic, see
    /// [`ConcurrentRelation::transaction`]).
    ///
    /// [`ConcurrentRelation::transaction`]: crate::ConcurrentRelation::transaction
    pub fn relation(&self) -> &'t ConcurrentRelation {
        self.rel
    }

    /// §4.2 precondition for every operation: all acquisitions precede
    /// all releases across the *whole* transaction, and releases happen
    /// only at commit/rollback — so the engine must still be in its
    /// growing phase whenever an operation starts.
    fn assert_two_phase(&self) {
        debug_assert!(
            !self.exec.engine_in_shrinking_phase(),
            "two-phase discipline broken: engine entered the shrinking \
             phase mid-transaction"
        );
    }

    /// Net tuple-count change of the operations applied so far.
    pub(crate) fn len_delta(&self) -> isize {
        self.len_delta
    }

    /// Takes the attempt's applied-operation stream for the WAL's redo
    /// record (empty when the relation has no WAL, or nothing applied).
    pub(crate) fn take_redo(&mut self) -> Vec<RedoOp> {
        std::mem::take(&mut self.redo)
    }

    /// Takes the attempt's MVCC state (commit stamp + write journal);
    /// the commit/rollback paths stamp and retire it before the engine
    /// releases any lock.
    pub(crate) fn take_mvcc(&mut self) -> crate::mvcc::MvccScope {
        self.exec.take_mvcc()
    }

    /// Pre-seeds the attempt's commit stamp. The sharding layer injects
    /// one shared stamp into every shard-local transaction of a
    /// cross-shard attempt, so all shards' versions become visible at one
    /// timestamp (a single consistent cut).
    pub(crate) fn set_mvcc_stamp(&mut self, stamp: std::sync::Arc<relc_locks::CommitStamp>) {
        self.exec.set_mvcc_stamp(stamp);
    }

    /// `insert r s t` (§2) under this transaction's lock scope: inserts
    /// `s ∪ t` provided no existing tuple extends `s`; returns whether the
    /// insert happened.
    ///
    /// # Errors
    ///
    /// As for [`ConcurrentRelation::insert`], wrapped in
    /// [`TxnError::Core`]; or [`TxnError::Restart`] (propagate it).
    pub fn insert(&mut self, s: &Tuple, t: &Tuple) -> Result<bool, TxnError> {
        let record_undo = !self.single_shot;
        self.insert_impl(s, t, record_undo)
    }

    /// [`Transaction::insert`] with the undo decision made by the caller:
    /// batch operations record undo entries even in single-shot mode (a
    /// mid-batch failure must roll the whole batch back), while the
    /// single-shot one-op sugar never needs them.
    fn insert_impl(&mut self, s: &Tuple, t: &Tuple, record_undo: bool) -> Result<bool, TxnError> {
        self.assert_two_phase();
        let x = self.validate_insert(s, t)?;
        let plan = self.repr.insert_plan(s.dom())?;
        // A full tuple is always a key, so the inverse plan always exists.
        let inverse = if record_undo {
            Some(self.repr.remove_plan(x.dom())?)
        } else {
            None
        };
        let undo = InsertUndo::from_inverse(inverse.as_deref());
        let res = self.exec.run_insert(&plan, &x, s, self.repr.root(), undo);
        let inserted = self.track(res)?;
        if inserted {
            self.len_delta += 1;
            if let Some(plan) = inverse {
                self.undo.push(UndoOp::Unlink { plan, tuple: x });
            }
            if self.log_redo {
                self.redo.push(RedoOp::Insert(s.clone(), t.clone()));
            }
        }
        Ok(inserted)
    }

    /// §2 argument validation shared by [`Transaction::insert`] and
    /// [`Transaction::insert_all`]: disjoint domains, full valuation.
    /// Returns `x = s ∪ t`.
    fn validate_insert(&self, s: &Tuple, t: &Tuple) -> Result<Tuple, TxnError> {
        if !s.dom().is_disjoint(t.dom()) {
            return Err(SpecError::OverlappingInsertDomains {
                shared: self
                    .rel
                    .schema()
                    .catalog()
                    .render_set(s.dom().intersection(t.dom())),
            }
            .into());
        }
        let x = s.union(t).expect("disjoint domains cannot conflict");
        self.rel
            .schema()
            .check_valuation(&x)
            .map_err(CoreError::from)?;
        Ok(x)
    }

    /// Batched `insert r s t` over many rows under this transaction's lock
    /// scope: semantically the sequential fold of [`Transaction::insert`]
    /// over `rows` — one put-if-absent result per row, duplicate patterns
    /// within the batch losing to the first occurrence — executed as **one
    /// amortized pass**: one plan fetch for the whole batch, every row's
    /// root lock targets deduplicated and acquired in one globally sorted
    /// sweep, and root-edge publications fused into one bulk container
    /// write per edge.
    ///
    /// The batch is atomic within the transaction: its rows share one undo
    /// segment, so a mid-batch failure (or a later abort of the enclosing
    /// transaction) rolls back *every* applied row, never a prefix. All
    /// rows are validated before the first effect; rows whose shapes
    /// (`dom s`, `dom t`) differ from the first row's fall back to the
    /// per-row path, keeping the fold semantics exact.
    ///
    /// # Errors
    ///
    /// As for [`Transaction::insert`] — validation errors abort the whole
    /// batch with no effect; or [`TxnError::Restart`] (propagate it).
    pub fn insert_all(&mut self, rows: &[(Tuple, Tuple)]) -> Result<Vec<bool>, TxnError> {
        self.assert_two_phase();
        let Some(((s0, t0), _)) = rows.split_first() else {
            return Ok(Vec::new());
        };
        // Shape scan strictly before the first effect. A uniform batch
        // (every row binding the first row's column sets — the common
        // case) validates once: the §2 conditions depend only on the
        // domains, so one disjointness + valuation check covers all rows.
        let (dom_s, dom_t) = (s0.dom(), t0.dom());
        if rows
            .iter()
            .any(|(s, t)| s.dom() != dom_s || t.dom() != dom_t)
        {
            // Mixed shapes need per-row plans; run the fold directly (each
            // row validates itself, and undo is recorded per row, so
            // batch atomicity still holds).
            let mut out = Vec::with_capacity(rows.len());
            for (s, t) in rows {
                out.push(self.insert_impl(s, t, true)?);
            }
            return Ok(out);
        }
        self.validate_insert(s0, t0)?;
        let xs: Vec<Tuple> = rows.iter().map(|(s, t)| s.union_disjoint(t)).collect();
        let plan = self.repr.insert_batch_plan(dom_s)?;
        let mut results = Vec::with_capacity(rows.len());
        let mut applied = Vec::new();
        let res = self.exec.run_insert_all(
            &plan,
            &xs,
            rows,
            self.repr.root(),
            self.single_shot,
            &mut results,
            &mut applied,
        );
        // The applied prefix is recorded in the undo segment *before* a
        // mid-batch restart propagates: rollback must compensate it.
        let mut xs = xs;
        for i in applied {
            self.len_delta += 1;
            self.undo.push(UndoOp::Unlink {
                plan: Arc::clone(&plan.inverse),
                tuple: std::mem::replace(&mut xs[i], Tuple::empty()),
            });
            if self.log_redo {
                let (s, t) = &rows[i];
                self.redo.push(RedoOp::Insert(s.clone(), t.clone()));
            }
        }
        self.track(res)?;
        Ok(results)
    }

    /// Batched `remove r s` over many keys under this transaction's lock
    /// scope: semantically the sequential fold of [`Transaction::remove`]
    /// over `keys` (duplicate keys remove once), executed as one amortized
    /// pass with a single plan fetch and one globally sorted bulk lock
    /// sweep. Returns one outcome per key — whether *that* key's tuple
    /// existed and was removed (a later duplicate of a removed key reads
    /// `false`) — so batch callers can tell which keys were present;
    /// `results.iter().filter(|b| **b).count()` is the removed total.
    ///
    /// The batch shares one undo segment: a mid-batch failure or a later
    /// abort re-inserts every removed tuple. Keys whose shape differs from
    /// the first key's fall back to the per-key path.
    ///
    /// # Errors
    ///
    /// As for [`Transaction::remove`]; or [`TxnError::Restart`]
    /// (propagate it).
    pub fn remove_all(&mut self, keys: &[Tuple]) -> Result<Vec<bool>, TxnError> {
        self.assert_two_phase();
        let Some(k0) = keys.first() else {
            return Ok(Vec::new());
        };
        if keys.iter().any(|k| k.dom() != k0.dom()) {
            let mut out = Vec::with_capacity(keys.len());
            for k in keys {
                out.push(self.remove_impl(k, true)?.is_some());
            }
            return Ok(out);
        }
        let plan = self.repr.remove_batch_plan(k0.dom())?;
        let mut removed = Vec::new();
        let res = self
            .exec
            .run_remove_all(&plan, keys, self.repr.root(), &mut removed);
        let mut results = vec![false; keys.len()];
        for (i, t) in removed {
            results[i] = true;
            self.len_delta -= 1;
            self.undo.push(UndoOp::Reinsert {
                plan: Arc::clone(&plan.reinsert),
                tuple: t,
            });
            if self.log_redo {
                self.redo.push(RedoOp::Remove(keys[i].clone()));
            }
        }
        self.track(res)?;
        Ok(results)
    }

    /// `remove r s` (§2) under this transaction's lock scope; returns how
    /// many tuples were removed (0 or 1, since `s` must be a key).
    ///
    /// # Errors
    ///
    /// As for [`ConcurrentRelation::remove`], wrapped in
    /// [`TxnError::Core`]; or [`TxnError::Restart`] (propagate it).
    pub fn remove(&mut self, s: &Tuple) -> Result<usize, TxnError> {
        Ok(usize::from(self.remove_returning(s)?.is_some()))
    }

    /// Like [`Transaction::remove`], but returns the removed tuple.
    ///
    /// # Errors
    ///
    /// As for [`Transaction::remove`].
    pub fn remove_returning(&mut self, s: &Tuple) -> Result<Option<Tuple>, TxnError> {
        let record_undo = !self.single_shot;
        self.remove_impl(s, record_undo)
    }

    /// [`Transaction::remove_returning`] with the undo decision made by
    /// the caller (see [`Transaction::insert_impl`]).
    fn remove_impl(&mut self, s: &Tuple, record_undo: bool) -> Result<Option<Tuple>, TxnError> {
        self.assert_two_phase();
        let plan = self.repr.remove_plan(s.dom())?;
        // The compensating re-insert's plan is fetched *before* the unlink
        // is applied: no fallible step may sit between a mutation and the
        // push of its undo entry. Removed tuples are full valuations, so
        // the plan's bound set is the whole column set.
        let reinsert = if record_undo {
            Some(self.repr.insert_plan(self.rel.schema().columns())?)
        } else {
            None
        };
        let res = self.exec.run_remove(&plan, s, self.repr.root());
        let removed = self.track(res)?;
        if let Some(u) = &removed {
            self.len_delta -= 1;
            if let Some(plan) = reinsert {
                self.undo.push(UndoOp::Reinsert {
                    plan,
                    tuple: u.clone(),
                });
            }
            if self.log_redo {
                self.redo.push(RedoOp::Remove(s.clone()));
            }
        }
        Ok(removed)
    }

    /// `update r s t` (§2) under this transaction's lock scope: replaces
    /// the unique tuple `u ⊇ s` with `u ⊕ t`, returning the replaced
    /// tuple, or `None` if no tuple extends `s`.
    ///
    /// `s` must be a key (as for `remove`) and `dom t` must be disjoint
    /// from `dom s` — an update never changes which key the tuple answers
    /// to.
    ///
    /// Two strategies, chosen by the planner (see
    /// [`crate::planner::UpdatePlan`]): when the updated columns appear in
    /// no non-sink node key, only the touched edges' entries are rewritten
    /// **in place** under write locks on exactly those edges; otherwise a
    /// locked unlink + re-insert runs under the one two-phase scope. Either
    /// way the update is a single serializable step.
    ///
    /// # Errors
    ///
    /// As for [`ConcurrentRelation::update`], wrapped in
    /// [`TxnError::Core`]; or [`TxnError::Restart`] (propagate it).
    pub fn update(&mut self, s: &Tuple, t: &Tuple) -> Result<Option<Tuple>, TxnError> {
        self.assert_two_phase();
        let plan = self.repr.update_plan(s.dom(), t.dom())?;
        match &*plan {
            UpdatePlan::InPlace(ip) => {
                // Every lock is taken before the first write, so a restart
                // here leaves nothing to compensate; only later operations
                // of a multi-op transaction can force the write-back.
                let res = self.exec.run_update_in_place(ip, s, t, self.repr.root());
                let Some(old) = self.track(res)? else {
                    return Ok(None);
                };
                if !self.single_shot {
                    self.undo.push(UndoOp::WriteBack {
                        plan: Arc::clone(&plan),
                        old: old.clone(),
                        new: old.override_with(t),
                    });
                }
                if self.log_redo {
                    self.redo.push(RedoOp::Update(s.clone(), t.clone()));
                }
                Ok(Some(old))
            }
            UpdatePlan::General(gp) => {
                let res = self.exec.run_remove(&gp.remove, s, self.repr.root());
                let Some(old) = self.track(res)? else {
                    return Ok(None);
                };
                // From here the unlink is applied, and the re-insert below
                // can still restart (its root batch names the *new*
                // values' tokens) — so the compensation entry is recorded
                // even for single-shot updates. Its locks are a subset of
                // the unlink's held set, and it shares the plan's `Arc`d
                // full-column insert plan (one plan fetch, not two).
                self.undo.push(UndoOp::Reinsert {
                    plan: Arc::clone(&gp.insert),
                    tuple: old.clone(),
                });
                let new = old.override_with(t);
                let inverse_new = if self.single_shot {
                    None
                } else {
                    Some(self.repr.remove_plan(new.dom())?)
                };
                let undo = InsertUndo::from_inverse(inverse_new.as_deref());
                let res = self
                    .exec
                    .run_insert(&gp.insert, &new, &new, self.repr.root(), undo);
                let reinserted = self.track(res)?;
                debug_assert!(
                    reinserted,
                    "no tuple can extend the unlinked key under our exclusive locks"
                );
                if let Some(plan) = inverse_new {
                    self.undo.push(UndoOp::Unlink { plan, tuple: new });
                }
                if self.log_redo {
                    self.redo.push(RedoOp::Update(s.clone(), t.clone()));
                }
                Ok(Some(old))
            }
        }
    }

    /// `query r s C` (§2) under this transaction's lock scope: the
    /// projection onto `cols` of all tuples extending `s`, deduplicated
    /// and sorted. Observes this transaction's own earlier writes.
    ///
    /// Inside a transaction a query's shared locks *persist to commit*
    /// (two-phase discipline) — the observed values stay stable for the
    /// rest of the transaction. A later write to the same edges upgrades
    /// shared→exclusive, which restarts the closure once and re-runs it
    /// with exclusive locks acquired up front (the engine's mode hints).
    ///
    /// # Errors
    ///
    /// As for [`ConcurrentRelation::query`], wrapped in
    /// [`TxnError::Core`]; or [`TxnError::Restart`] (propagate it).
    pub fn query(&mut self, s: &Tuple, cols: ColumnSet) -> Result<Vec<Tuple>, TxnError> {
        self.assert_two_phase();
        let plan = self.repr.query_plan(s.dom(), cols)?;
        let res = self.exec.run_query(&plan, s, self.repr.root());
        self.track(res)
    }

    /// Range query under this transaction's lock scope: the projection
    /// onto `cols` of all tuples extending `s` whose `range` column falls
    /// inside the interval, ordered by (range-column value, projection),
    /// deduplicated, truncated to `range.limit()` if set. Observes this
    /// transaction's own earlier writes; the same two-phase lock
    /// persistence as [`Transaction::query`] applies.
    ///
    /// # Errors
    ///
    /// As for [`Transaction::query`].
    pub fn query_range(
        &mut self,
        s: &Tuple,
        range: &relc_spec::RangePattern,
        cols: ColumnSet,
    ) -> Result<Vec<Tuple>, TxnError> {
        self.assert_two_phase();
        let plan = self.repr.range_plan(s.dom(), range, cols)?;
        let res = self.exec.run_query_range(&plan, s, range, self.repr.root());
        self.track(res)
    }

    /// Whether any tuple extends `s` — a short-circuiting existence check
    /// that stops at the first witness instead of materializing,
    /// deduplicating, and sorting every match the way
    /// `query(s, ∅)` would.
    ///
    /// # Errors
    ///
    /// As for [`Transaction::query`].
    pub fn contains(&mut self, s: &Tuple) -> Result<bool, TxnError> {
        self.assert_two_phase();
        let plan = self.repr.query_plan(s.dom(), ColumnSet::EMPTY)?;
        let res = self.exec.run_exists(&plan, s, self.repr.root());
        self.track(res)
    }

    /// All tuples, sorted, as observed under this transaction's locks.
    ///
    /// # Errors
    ///
    /// As for [`Transaction::query`].
    pub fn snapshot(&mut self) -> Result<Vec<Tuple>, TxnError> {
        self.query(&Tuple::empty(), self.rel.schema().columns())
    }

    /// Aborts the transaction: return this from the closure (e.g.
    /// `return Err(tx.abort("insufficient funds"))`) to roll back every
    /// effect and surface [`CoreError::TransactionAborted`] to the
    /// [`ConcurrentRelation::transaction`] caller.
    ///
    /// [`ConcurrentRelation::transaction`]: crate::ConcurrentRelation::transaction
    pub fn abort(&self, reason: impl Into<String>) -> TxnError {
        TxnError::Core(CoreError::TransactionAborted(reason.into()))
    }

    /// Rolls back every applied effect by replaying the undo log in
    /// reverse, while all of the transaction's locks are still held.
    ///
    /// # Panics
    ///
    /// Panics if a compensating operation demands a restart — that would
    /// mean an operation failed to pre-acquire its inverse's lock set
    /// (a bug in the transaction layer, never a recoverable condition:
    /// releasing locks here would publish a half-applied transaction).
    pub(crate) fn rollback_effects(&mut self) {
        while let Some(op) = self.undo.pop() {
            match op {
                UndoOp::Unlink { plan, tuple } => {
                    let removed = self
                        .exec
                        .run_remove(&plan, &tuple, self.repr.root())
                        .unwrap_or_else(|_| {
                            panic!(
                                "transaction compensation (unlink) restarted; \
                                 inverse locks were not pre-acquired"
                            )
                        });
                    debug_assert!(removed.is_some(), "inserted tuple vanished under our locks");
                }
                UndoOp::Reinsert { plan, tuple } => {
                    // `Compensation` (not `None`): the re-insert must lock
                    // freshly materialized speculative targets before
                    // publishing them, or a speculative reader could
                    // dirty-read the rolled-back value and make a later
                    // compensation step restart.
                    let inserted = self
                        .exec
                        .run_insert(
                            &plan,
                            &tuple,
                            &tuple,
                            self.repr.root(),
                            InsertUndo::Compensation,
                        )
                        .unwrap_or_else(|_| {
                            panic!(
                                "transaction compensation (re-insert) restarted; \
                                 inverse locks were not pre-acquired"
                            )
                        });
                    debug_assert!(inserted, "removed tuple reappeared under our locks");
                }
                UndoOp::WriteBack { plan, old, new } => {
                    let UpdatePlan::InPlace(ip) = &*plan else {
                        unreachable!("WriteBack is recorded only for in-place update plans")
                    };
                    // Acquires no locks (the forward pass's are still
                    // held), so this compensation step cannot restart by
                    // construction.
                    self.exec
                        .run_update_write_back(ip, &old, &new, self.repr.root());
                }
            }
        }
        self.len_delta = 0;
        self.redo.clear();
    }
}

impl fmt::Debug for Transaction<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Transaction")
            .field("relation", &self.rel)
            .field("pending_undo_ops", &self.undo.len())
            .field("len_delta", &self.len_delta)
            .field("single_shot", &self.single_shot)
            .finish()
    }
}
