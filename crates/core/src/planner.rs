//! The concurrent query planner (§5).
//!
//! The planner compiles each relational operation into a plan tailored to
//! one decomposition and lock placement:
//!
//! * **Queries** become chain plans: because adequacy forces every branch
//!   below a node to cover the node's full residual, a single
//!   root-originating chain always suffices; the planner enumerates all
//!   chains that bind the needed columns, rejects chains that would need to
//!   scan a speculative edge (no lock could be named in advance, §4.5),
//!   costs each candidate, and keeps the cheapest.
//! * **Mutations** (insert/remove) must touch *every* edge (§5.2: "a
//!   concurrent query plan that locates and locks all of the edges that
//!   require updating"). The planner fixes a global edge order — by lock
//!   host's topological position, then source position — which makes the
//!   executor's acquisitions follow the §5.1 lock order, and classifies
//!   each traversal as lookup or scan given the operation's bound columns.
//! * **Updates** are classified into two strategies. When the updated
//!   columns intersect no edge source's key columns (only sinks bind
//!   them), the tuple's position in every untouched container is
//!   unchanged and [`plan_update`](Planner::plan_update) emits the
//!   [`UpdatePlan::InPlace`] fast path: lock the cheapest locate chains
//!   in read mode, the *touched* edges (whose key columns intersect
//!   `dom t`) in write mode, and rewrite exactly those entries in place.
//!   Otherwise the general [`UpdatePlan::General`] unlink + re-insert
//!   plan is produced. A mode-promotion pass upgrades any step sharing a
//!   physical lock host with an exclusive step, so a plan never requests
//!   one lock shared first and exclusive later (which would restart on
//!   the upgrade every time).
//! * The §5.2 static **sort-elision analysis**: a lock set produced by
//!   traversing sorted containers is already in lock order, so the runtime
//!   sort can be skipped (`presorted`).

use std::fmt;
use std::sync::Arc;

use relc_containers::ContainerKind;
use relc_locks::LockMode;
use relc_spec::{ColumnId, ColumnSet};

use crate::decomp::{Decomposition, EdgeId};
use crate::error::CoreError;
use crate::placement::LockPlacement;
use crate::query::{render_plan, PlanStep};

/// A compiled, costed query plan.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Growing-phase steps (unlocks are implicit at commit).
    pub steps: Vec<PlanStep>,
    /// Columns projected out of the surviving states.
    pub output: ColumnSet,
    /// Heuristic cost estimate used to select this plan.
    pub cost: f64,
}

/// How a mutation traverses one edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutTraverse {
    /// Point lookup: the edge's columns are bound at this point.
    Lookup,
    /// Scan (filtered by the pattern), binding the edge's columns.
    Scan,
}

/// A compiled insert plan (§2's `insert r s t`, put-if-absent).
#[derive(Debug, Clone)]
pub struct InsertPlan {
    /// Every edge, in mutation order (lock host topo, then source topo).
    pub edges: Vec<EdgeId>,
    /// Existence-check chain over the bound columns `dom s`.
    pub check: Vec<(EdgeId, MutTraverse)>,
    /// The check chain scans at least one edge. The check runs *unlocked*,
    /// so a scan observes whole container instances; under a striped root
    /// the fallback sweep holds only the inserted tuple's stripe, which
    /// does not exclude writers on sibling stripes. Force the root sweep
    /// to take every stripe (§4.4's conservative all-`k` rule) so the
    /// scanned instances are writer-free.
    pub check_has_scan: bool,
}

/// A compiled remove plan (§2's `remove r s`; `s` must be a key).
#[derive(Debug, Clone)]
pub struct RemovePlan {
    /// Every edge, in mutation order, with its traversal kind.
    pub edges: Vec<(EdgeId, MutTraverse)>,
    /// Per `edges` entry: conservatively take every stripe of the edge's
    /// lock (needed when the removal's emptiness checks must cover a whole
    /// container instance that striping splits).
    pub all_stripes: Vec<bool>,
}

/// A compiled update plan (§2's `update r s t`: replace the unique tuple
/// `u ⊇ s` with `u ⊕ t`).
///
/// The planner picks one of two strategies:
///
/// * [`UpdatePlan::InPlace`] — the **fast path**, chosen when the updated
///   columns appear in no non-sink node's key (equivalently: they are
///   disjoint from every edge *source*'s key columns). Then the only
///   structural change is rewriting the entries of the `touched` edges —
///   the tuple keeps its position in every other container — so the plan
///   locks just the traversal chain (read mode) plus the touched edges
///   (write mode) and swaps the touched entries in place.
/// * [`UpdatePlan::General`] — the fallback: a locked unlink of `u`
///   followed by a re-insert of `u ⊕ t` under the *same* two-phase scope.
///   The `remove` sub-plan's traversal takes every edge exclusively, which
///   subsumes the required write locks on the touched edges.
#[derive(Debug, Clone)]
pub enum UpdatePlan {
    /// Key-position-preserving fast path: rewrite only the touched edge
    /// entries in place.
    InPlace(InPlaceUpdate),
    /// General unlink + re-insert path.
    General(GeneralUpdate),
}

impl UpdatePlan {
    /// Columns assigned by the update (`dom t`).
    pub fn updated(&self) -> ColumnSet {
        match self {
            UpdatePlan::InPlace(p) => p.updated,
            UpdatePlan::General(p) => p.updated,
        }
    }

    /// Edges whose key columns intersect the updated set — the edges whose
    /// container entries are actually rewritten.
    pub fn touched(&self) -> &[EdgeId] {
        match self {
            UpdatePlan::InPlace(p) => &p.touched,
            UpdatePlan::General(p) => &p.touched,
        }
    }

    /// Whether the fast path was selected.
    pub fn is_in_place(&self) -> bool {
        matches!(self, UpdatePlan::InPlace(_))
    }
}

/// The general (unlink + re-insert) update plan.
#[derive(Debug, Clone)]
pub struct GeneralUpdate {
    /// Locates and unlinks the old tuple (all edges, mutation order).
    pub remove: RemovePlan,
    /// Re-inserts the rewritten tuple (existence check is over the full
    /// column set: after the unlink it is vacuous, but it keeps the insert
    /// machinery uniform). Shared (`Arc`) with the transaction layer's
    /// compensation entry, so `Tx::update` fetches one plan, not two.
    pub insert: Arc<InsertPlan>,
    /// Columns assigned by the update (`dom t`).
    pub updated: ColumnSet,
    /// Edges whose key columns intersect `updated`.
    pub touched: Vec<EdgeId>,
}

/// The in-place update fast path: a locate traversal over the minimal edge
/// set (cheapest chains from the root to every touched edge's source, plus
/// the touched edges themselves), followed by an entry rewrite of exactly
/// the touched edges.
#[derive(Debug, Clone)]
pub struct InPlaceUpdate {
    /// Locate/rewrite steps, in mutation order (so the executor's lock
    /// acquisitions follow the §5.1 global order).
    pub steps: Vec<InPlaceStep>,
    /// Columns assigned by the update (`dom t`).
    pub updated: ColumnSet,
    /// Edges whose entries are rewritten (the steps with `touched` set).
    pub touched: Vec<EdgeId>,
}

/// One step of an [`InPlaceUpdate`]: lock edge `edge`'s logical locks in
/// `mode`, then traverse it (`kind`), and — if `touched` — rewrite its
/// entry during the write phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InPlaceStep {
    /// The edge to lock and traverse.
    pub edge: EdgeId,
    /// Lookup where the edge's columns are bound at this point in the
    /// traversal, scan otherwise. A touched edge whose old values are not
    /// yet bound is always a scan; later touched edges become lookups once
    /// the first touched scan binds the old values (branch agreement
    /// guarantees every touched edge stores the same old values).
    pub kind: MutTraverse,
    /// Shared for pure traversal (the container's read mode), exclusive
    /// for touched edges — promoted to exclusive for *every* step whose
    /// placement host also hosts an exclusive step, so one physical lock
    /// is never requested shared first and exclusive later (which would
    /// force an upgrade restart on every execution).
    pub mode: LockMode,
    /// Whether this edge's container entry is rewritten.
    pub touched: bool,
    /// Take every stripe at the host: required when the traversal reads (or
    /// the rewrite moves) entries that striping by non-source columns
    /// spreads across stripes (§4.4's conservative all-`k` acquisition).
    pub all_stripes: bool,
}

/// A compiled batch-insert plan: the per-tuple [`InsertPlan`] plus every
/// per-edge analysis the batched executor would otherwise redo per tuple.
///
/// `insert_all` fetches one of these per batch (one plan-cache hit instead
/// of two per row), bulk-acquires the union of the batch's root-hosted
/// lock tokens in one globally sorted sweep, and defers the publication of
/// root-source edges so they can be written with one fused
/// `Container::extend_entries` call per container.
#[derive(Debug, Clone)]
pub struct InsertBatchPlan {
    /// The per-tuple insert plan (mutation order + existence-check chain).
    pub insert: Arc<InsertPlan>,
    /// Full-column remove plan compensating one applied row — shared with
    /// the transaction layer's undo entries, exactly as
    /// [`GeneralUpdate::insert`] shares its re-insert plan.
    pub inverse: Arc<RemovePlan>,
    /// Root-hosted edges with their force-all-stripes flag: the per-row
    /// fallback (or all-stripe) tokens of these edges form the batch's
    /// bulk lock sweep. The all-stripes entries come from the inverse
    /// plan — the compensation tokens a mid-transaction insert must hold
    /// before its first write (see [`crate::exec::InsertUndo::Prepare`]).
    pub root_hosted: Vec<(EdgeId, bool)>,
    /// Indexed by edge: the edge leaves the root, so the batch defers its
    /// publication to the flush (subtrees complete strictly before the
    /// root links them in, even mid-batch).
    pub defer: Vec<bool>,
    /// Node ids in topological order (the per-tuple materialization order,
    /// sorted once per plan instead of once per tuple).
    pub topo_nodes: Vec<crate::decomp::NodeId>,
}

/// A compiled batch-remove plan: the per-key [`RemovePlan`] plus the
/// precomputed root sweep and the compensating full-column insert plan.
#[derive(Debug, Clone)]
pub struct RemoveBatchPlan {
    /// The per-key remove plan (mutation order + traversal kinds).
    pub remove: Arc<RemovePlan>,
    /// Full-column insert plan compensating one removed row.
    pub reinsert: Arc<InsertPlan>,
    /// Root-hosted edges with their force-all-stripes flag (from the
    /// remove plan's per-edge analysis): the bulk lock sweep.
    pub root_hosted: Vec<(EdgeId, bool)>,
    /// Node ids in reverse topological order (the per-key unlink order,
    /// sorted once per plan instead of once per key).
    pub reverse_topo_nodes: Vec<crate::decomp::NodeId>,
}

/// The query planner for one (decomposition, placement) pair.
#[derive(Debug, Clone)]
pub struct Planner {
    decomp: Arc<Decomposition>,
    placement: Arc<LockPlacement>,
}

fn lookup_cost(kind: ContainerKind) -> f64 {
    match kind {
        ContainerKind::HashMap => 1.0,
        ContainerKind::ConcurrentHashMap => 1.3,
        ContainerKind::TreeMap => 1.7,
        ContainerKind::ConcurrentSkipListMap => 2.0,
        ContainerKind::CopyOnWriteArrayList => 1.5,
        ContainerKind::SplayTreeMap => 1.7,
        ContainerKind::Singleton => 0.4,
    }
}

const SCAN_SETUP_COST: f64 = 0.5;
const SCAN_ENTRY_COST: f64 = 0.4;
const DEFAULT_FANOUT: f64 = 8.0;
const LOCK_COST_SHARED: f64 = 0.4;
const LOCK_COST_EXCLUSIVE: f64 = 0.8;
const LOCK_COST_PER_EXTRA_STRIPE: f64 = 0.15;
/// Assumed fraction of an edge's entries falling inside a range interval.
/// A bounded in-order walk over a sorted container visits only that
/// fraction, so a range-scannable chain out-costs the filtered full scan
/// and wins the cheapest-chain selection.
const RANGE_SELECTIVITY: f64 = 0.35;

impl Planner {
    /// Creates a planner.
    ///
    /// # Panics
    ///
    /// Panics if the placement belongs to a different decomposition.
    pub fn new(decomp: Arc<Decomposition>, placement: Arc<LockPlacement>) -> Self {
        assert!(
            Arc::ptr_eq(placement.decomposition(), &decomp),
            "placement must belong to the decomposition"
        );
        Planner { decomp, placement }
    }

    /// The decomposition being planned against.
    pub fn decomposition(&self) -> &Arc<Decomposition> {
        &self.decomp
    }

    /// The lock placement being planned against.
    pub fn placement(&self) -> &Arc<LockPlacement> {
        &self.placement
    }

    /// Plans `query r s C` for a pattern binding `bound` and outputs
    /// `output` (§5.2). Returns the cheapest valid chain plan.
    ///
    /// # Errors
    ///
    /// [`CoreError::NoValidPlan`] if every chain would have to scan a
    /// speculative edge.
    pub fn plan_query(&self, bound: ColumnSet, output: ColumnSet) -> Result<Plan, CoreError> {
        self.plan_query_inner(bound, output, None)
    }

    /// Plans `query_range r s (lo ≤ c < hi) C`: a chain query whose states
    /// are additionally constrained by an interval over column `range_col`.
    ///
    /// The chain must bind the range column (otherwise the interval could
    /// not be checked). When the edge that first binds it keys on *exactly*
    /// that column, tuple order over the edge's single-column keys coincides
    /// with value order, so the interval is a contiguous container-key range
    /// and the planner emits [`PlanStep::RangeScan`] — a bounded in-order
    /// walk on sorted containers, a filtered full scan elsewhere. Edges
    /// binding the range column among other columns fall back to an
    /// ordinary [`PlanStep::Scan`] (the executor filters the fan-out). Both
    /// shapes are costed and the cheapest chain wins, with
    /// [`RANGE_SELECTIVITY`] discounting bounded walks.
    ///
    /// # Errors
    ///
    /// [`CoreError::NoValidPlan`] as for [`Planner::plan_query`].
    pub fn plan_range(
        &self,
        bound: ColumnSet,
        range_col: ColumnId,
        output: ColumnSet,
    ) -> Result<Plan, CoreError> {
        self.plan_query_inner(bound, output, Some(range_col))
    }

    fn plan_query_inner(
        &self,
        bound: ColumnSet,
        output: ColumnSet,
        range_col: Option<ColumnId>,
    ) -> Result<Plan, CoreError> {
        let mut needed = bound.union(output);
        if let Some(rc) = range_col {
            needed.insert(rc);
        }
        let mut best: Option<Plan> = None;
        let mut chain: Vec<EdgeId> = Vec::new();
        self.enumerate_chains(
            self.decomp.root(),
            bound,
            needed,
            output,
            range_col,
            &mut chain,
            &mut best,
        );
        best.ok_or_else(|| {
            CoreError::NoValidPlan(format!(
                "no chain can bind {} under placement `{}` (speculative edges \
                 cannot be scanned)",
                self.decomp.schema().catalog().render_set(needed),
                self.placement.name()
            ))
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn enumerate_chains(
        &self,
        node: crate::decomp::NodeId,
        bound: ColumnSet,
        needed: ColumnSet,
        output: ColumnSet,
        range_col: Option<ColumnId>,
        chain: &mut Vec<EdgeId>,
        best: &mut Option<Plan>,
    ) {
        // Every needed column must be covered by the *chain* (`A_node`):
        // pattern-bound columns not on the chain would be projected out
        // unverified, silently dropping the constraint. The root witnesses
        // no tuples, so at least one edge must be traversed.
        if needed.is_subset(self.decomp.node(node).key_cols) && node != self.decomp.root() {
            if let Some(plan) = self.chain_to_plan(chain, bound, output, range_col) {
                if best.as_ref().is_none_or(|b| plan.cost < b.cost) {
                    *best = Some(plan);
                }
            }
            return;
        }
        for &e in &self.decomp.node(node).outgoing {
            chain.push(e);
            self.enumerate_chains(
                self.decomp.edge(e).dst,
                bound,
                needed,
                output,
                range_col,
                chain,
                best,
            );
            chain.pop();
        }
    }

    /// Builds and costs the plan for one chain; `None` if invalid.
    fn chain_to_plan(
        &self,
        chain: &[EdgeId],
        bound: ColumnSet,
        output: ColumnSet,
        range_col: Option<ColumnId>,
    ) -> Option<Plan> {
        let mut steps = Vec::new();
        let mut known = bound;
        let mut cost = 0.0f64;
        let mut states = 1.0f64;
        // §5.2 sort-elision analysis. The lock order compares instance key
        // tuples lexicographically by ascending column id, while the state
        // list is ordered by the *scan order* of the traversed containers.
        // The two coincide only while (a) every scanned container is sorted
        // and (b) the scanned column groups appear in ascending column-id
        // order (so scan-major order equals tuple-major order).
        let mut chain_sorted = true; // one initial state is trivially sorted
        let mut last_scanned_max: Option<usize> = None;
        for &e in chain {
            let em = self.decomp.edge(e);
            let ep = self.placement.edge(e);
            let mode = self.placement.read_mode(e);
            let point = em.cols.is_subset(known);
            if ep.speculative {
                if !point {
                    return None; // cannot scan a speculative edge (§4.5)
                }
                steps.push(PlanStep::SpecLookup { edge: e, mode });
                cost += states * (lookup_cost(em.container) * 2.0 + LOCK_COST_EXCLUSIVE);
            } else {
                // A scan reads a whole container instance; if striping
                // splits the instance's entries across stripes
                // (stripe_by ⊄ A_src), every stripe must be taken (§4.4).
                let a_src = self.decomp.node(em.src).key_cols;
                let all_stripes = !point && !ep.stripe_by.is_subset(a_src);
                // Stripe cost: unbound or conservative stripes take all k.
                let k = self.placement.stripe_count(ep.host) as f64;
                let stripes = if !all_stripes && ep.stripe_by.is_subset(known) {
                    1.0
                } else {
                    k
                };
                let lock_base = match mode {
                    LockMode::Shared => LOCK_COST_SHARED,
                    LockMode::Exclusive => LOCK_COST_EXCLUSIVE,
                };
                cost += states * (lock_base + (stripes - 1.0) * LOCK_COST_PER_EXTRA_STRIPE);
                steps.push(PlanStep::Lock {
                    edge: e,
                    mode,
                    presorted: chain_sorted,
                    all_stripes,
                });
                if point {
                    steps.push(PlanStep::Lookup { edge: e });
                    cost += states * lookup_cost(em.container);
                } else {
                    // An edge keying on exactly the (still unbound) range
                    // column maps the value interval onto a contiguous
                    // container-key interval: range-scan it. Sorted
                    // containers walk only the interval; elsewhere the
                    // traversal degrades to a filtered full scan (same
                    // visit cost, smaller fan-out).
                    let range_here = range_col
                        .is_some_and(|rc| !known.contains(rc) && em.cols == ColumnSet::single(rc));
                    // A scan reads the whole container instance, whose
                    // population grows with the number of key columns the
                    // edge binds; filtering only shrinks the *output*.
                    let population = if em.singleton {
                        1.0
                    } else {
                        DEFAULT_FANOUT.powi(em.cols.len() as i32).min(4096.0)
                    };
                    let out_fanout = if em.singleton {
                        1.0
                    } else {
                        DEFAULT_FANOUT
                            .powi(em.cols.difference(known).len() as i32)
                            .min(4096.0)
                    };
                    if range_here {
                        let ordered = em.container.props().sorted_scan;
                        steps.push(PlanStep::RangeScan { edge: e, ordered });
                        let visited = if ordered {
                            (population * RANGE_SELECTIVITY).max(1.0)
                        } else {
                            population
                        };
                        cost += states * (SCAN_SETUP_COST + visited * SCAN_ENTRY_COST);
                        states *= (out_fanout * RANGE_SELECTIVITY).max(1.0);
                    } else {
                        steps.push(PlanStep::Scan { edge: e });
                        cost += states * (SCAN_SETUP_COST + population * SCAN_ENTRY_COST);
                        states *= out_fanout;
                    }
                    let group_min = em.cols.iter().next().map(|c| c.index());
                    let group_max = em.cols.iter().last().map(|c| c.index());
                    chain_sorted = chain_sorted
                        && em.container.props().sorted_scan
                        && match (last_scanned_max, group_min) {
                            (Some(prev_max), Some(min)) => prev_max < min,
                            _ => true,
                        };
                    last_scanned_max = last_scanned_max.max(group_max);
                }
            }
            known = known.union(em.cols);
        }
        Some(Plan {
            steps,
            output,
            cost,
        })
    }

    /// The global mutation order over all edges: lock host topological
    /// position, then source position, then edge index. Guarantees that an
    /// edge's source node is bound before the edge is traversed, and that
    /// lock acquisitions follow the §5.1 order for well-formed placements.
    pub fn mutation_order(&self) -> Vec<EdgeId> {
        let mut edges: Vec<EdgeId> = self.decomp.edges().map(|(e, _)| e).collect();
        edges.sort_by_key(|&e| {
            let em = self.decomp.edge(e);
            let host = self.placement.edge(e).host;
            (
                self.decomp.topo_position(host),
                self.decomp.topo_position(em.src),
                e.index(),
            )
        });
        edges
    }

    /// Plans `insert r s t` where `dom s = bound` (§2). The full tuple
    /// `s ∪ t` must be a valuation of the schema, so every edge is traversed
    /// by point lookup; the existence check on `s` is a chain over `bound`.
    ///
    /// # Errors
    ///
    /// [`CoreError::NoValidPlan`] if no chain can check `∃u ⊇ s` under the
    /// placement (e.g. the check would scan a speculative edge).
    pub fn plan_insert(&self, bound: ColumnSet) -> Result<InsertPlan, CoreError> {
        let check = self.plan_check_chain(bound)?;
        let check_has_scan = check.iter().any(|&(_, k)| k == MutTraverse::Scan);
        Ok(InsertPlan {
            edges: self.mutation_order(),
            check,
            check_has_scan,
        })
    }

    /// Finds the cheapest chain that decides whether any tuple extends a
    /// pattern over `bound`: lookups where the edge's columns are bound,
    /// scans otherwise (scans are invalid on speculative edges).
    fn plan_check_chain(&self, bound: ColumnSet) -> Result<Vec<(EdgeId, MutTraverse)>, CoreError> {
        let mut best: Option<(f64, Vec<(EdgeId, MutTraverse)>)> = None;
        let mut chain = Vec::new();
        self.enumerate_check(self.decomp.root(), bound, 0.0, 1.0, &mut chain, &mut best);
        best.map(|(_, c)| c).ok_or_else(|| {
            CoreError::NoValidPlan(format!(
                "no chain can check existence of a tuple over {} under placement `{}`",
                self.decomp.schema().catalog().render_set(bound),
                self.placement.name()
            ))
        })
    }

    fn enumerate_check(
        &self,
        node: crate::decomp::NodeId,
        bound: ColumnSet,
        cost: f64,
        states: f64,
        chain: &mut Vec<(EdgeId, MutTraverse)>,
        best: &mut Option<(f64, Vec<(EdgeId, MutTraverse)>)>,
    ) {
        // Stop when every bound column has been applied as a constraint:
        // A_node ⊇ bound means a surviving state witnesses ∃u ⊇ s. The root
        // instance always exists, so at least one edge must be traversed.
        if bound.is_subset(self.decomp.node(node).key_cols) && node != self.decomp.root() {
            if best.as_ref().is_none_or(|(c, _)| cost < *c) {
                *best = Some((cost, chain.clone()));
            }
            return;
        }
        for &e in &self.decomp.node(node).outgoing {
            let em = self.decomp.edge(e);
            let ep = self.placement.edge(e);
            let point = em.cols.is_subset(bound);
            let (kind, step_cost, next_states) = if point {
                (MutTraverse::Lookup, lookup_cost(em.container), states)
            } else {
                if ep.speculative {
                    continue; // cannot scan a speculative edge
                }
                let fanout = if em.singleton { 1.0 } else { DEFAULT_FANOUT };
                (
                    MutTraverse::Scan,
                    SCAN_SETUP_COST + fanout * SCAN_ENTRY_COST,
                    states * fanout,
                )
            };
            chain.push((e, kind));
            self.enumerate_check(
                em.dst,
                bound,
                cost + states * step_cost,
                next_states,
                chain,
                best,
            );
            chain.pop();
        }
    }

    /// Plans `remove r s` where `dom s = bound`; the schema's FDs must make
    /// `bound` a key (§2: "our implementation requires that s is a key").
    ///
    /// # Errors
    ///
    /// * [`CoreError::Spec`] if `bound` is not a key;
    /// * [`CoreError::NoValidPlan`] if some edge could only be reached by
    ///   scanning a speculative edge.
    pub fn plan_remove(&self, bound: ColumnSet) -> Result<RemovePlan, CoreError> {
        if !self.decomp.schema().is_key(bound) {
            return Err(CoreError::Spec(relc_spec::SpecError::RemoveNotByKey {
                dom: self.decomp.schema().catalog().render_set(bound),
            }));
        }
        let order = self.mutation_order();
        let mut known = bound;
        let mut edges = Vec::with_capacity(order.len());
        let mut all_stripes = Vec::with_capacity(order.len());
        for e in order {
            let em = self.decomp.edge(e);
            let ep = self.placement.edge(e);
            let kind = if em.cols.is_subset(known) {
                MutTraverse::Lookup
            } else {
                if ep.speculative {
                    return Err(CoreError::NoValidPlan(format!(
                        "removal must scan speculative edge {}→{}",
                        self.decomp.node(em.src).name,
                        self.decomp.node(em.dst).name
                    )));
                }
                known = known.union(em.cols);
                MutTraverse::Scan
            };
            // Two situations force taking every stripe: emptiness checks on
            // non-root sources, and scans — both read a whole container
            // instance, which striping beyond the source key splits.
            let a_src = self.decomp.node(em.src).key_cols;
            let needs_all = !ep.speculative
                && !ep.stripe_by.is_subset(a_src)
                && self.placement.stripe_count(ep.host) > 1
                && (em.src != self.decomp.root() || kind == MutTraverse::Scan);
            edges.push((e, kind));
            all_stripes.push(needs_all);
        }
        Ok(RemovePlan { edges, all_stripes })
    }

    /// Plans a batched `insert_all` whose rows all bind `bound`: the
    /// per-tuple insert plan, its full-column inverse (one shared `Arc` for
    /// every row's undo entry), and the per-edge analyses of the bulk lock
    /// sweep and the deferred root publications. See [`InsertBatchPlan`].
    ///
    /// # Errors
    ///
    /// As for [`Planner::plan_insert`].
    pub fn plan_insert_batch(&self, bound: ColumnSet) -> Result<InsertBatchPlan, CoreError> {
        let insert = Arc::new(self.plan_insert(bound)?);
        // A full tuple is always a key, so the inverse plan always exists.
        let inverse = Arc::new(self.plan_remove(self.decomp.schema().columns())?);
        // The unlocked check chain's scans need every root stripe held,
        // exactly as in the single-row path (see `InsertPlan::check_has_scan`).
        let root_hosted = self
            .root_hosted_edges(&inverse)
            .into_iter()
            .map(|(e, force)| (e, force || insert.check_has_scan))
            .collect();
        Ok(InsertBatchPlan {
            root_hosted,
            defer: self.root_source_edges(),
            topo_nodes: self.nodes_in_topo_order(false),
            insert,
            inverse,
        })
    }

    /// Plans a batched `remove_all` whose keys all bind `bound`: the
    /// per-key remove plan, the full-column re-insert compensating one
    /// removed row, and the precomputed root lock sweep. See
    /// [`RemoveBatchPlan`].
    ///
    /// # Errors
    ///
    /// As for [`Planner::plan_remove`].
    pub fn plan_remove_batch(&self, bound: ColumnSet) -> Result<RemoveBatchPlan, CoreError> {
        let remove = Arc::new(self.plan_remove(bound)?);
        let reinsert = Arc::new(self.plan_insert(self.decomp.schema().columns())?);
        Ok(RemoveBatchPlan {
            root_hosted: self.root_hosted_edges(&remove),
            reverse_topo_nodes: self.nodes_in_topo_order(true),
            remove,
            reinsert,
        })
    }

    /// Root-hosted edges with the force-all-stripes flag `plan`'s per-edge
    /// analysis assigns them — the shape of a batch's bulk lock sweep.
    fn root_hosted_edges(&self, plan: &RemovePlan) -> Vec<(EdgeId, bool)> {
        let root = self.decomp.root();
        self.decomp
            .edges()
            .filter(|&(e, _)| self.placement.edge(e).host == root)
            .map(|(e, _)| {
                let force_all = plan
                    .edges
                    .iter()
                    .zip(&plan.all_stripes)
                    .any(|(&(pe, _), &all)| pe == e && all);
                (e, force_all)
            })
            .collect()
    }

    /// Per-edge (indexed by [`EdgeId::index`]): the edge leaves the root.
    fn root_source_edges(&self) -> Vec<bool> {
        let mut defer = vec![false; self.decomp.edge_count()];
        for (e, em) in self.decomp.edges() {
            defer[e.index()] = em.src == self.decomp.root();
        }
        defer
    }

    /// All node ids sorted by topological position (reversed on demand).
    fn nodes_in_topo_order(&self, reverse: bool) -> Vec<crate::decomp::NodeId> {
        let mut nodes: Vec<crate::decomp::NodeId> = self.decomp.nodes().map(|(id, _)| id).collect();
        nodes.sort_by_key(|&v| self.decomp.topo_position(v));
        if reverse {
            nodes.reverse();
        }
        nodes
    }

    /// Plans `update r s t` where `dom s = bound` and `dom t = updated`
    /// (§2). The schema's FDs must make `bound` a key (as for `remove`, so
    /// "the tuple matching `s`" is well defined), and the updated columns
    /// must be disjoint from `bound` — updating a tuple never changes which
    /// key it answers to.
    ///
    /// When the updated columns appear in no edge source's key columns —
    /// only sink nodes bind them, so the tuple's position in every
    /// untouched container is unchanged — the planner emits the
    /// [`UpdatePlan::InPlace`] fast path; otherwise the general
    /// unlink + re-insert plan.
    ///
    /// # Errors
    ///
    /// * [`CoreError::Spec`] with [`relc_spec::SpecError::EmptyUpdate`] if
    ///   `updated` is empty, [`relc_spec::SpecError::UpdateOverlapsPattern`]
    ///   if it intersects `bound`, or
    ///   [`relc_spec::SpecError::RemoveNotByKey`] if `bound` is not a key;
    /// * [`CoreError::NoValidPlan`] if the located tuple cannot be reached
    ///   under the placement (as for `remove`).
    pub fn plan_update(
        &self,
        bound: ColumnSet,
        updated: ColumnSet,
    ) -> Result<UpdatePlan, CoreError> {
        if updated.is_empty() {
            return Err(CoreError::Spec(relc_spec::SpecError::EmptyUpdate));
        }
        if !updated.is_disjoint(bound) {
            return Err(CoreError::Spec(
                relc_spec::SpecError::UpdateOverlapsPattern {
                    shared: self
                        .decomp
                        .schema()
                        .catalog()
                        .render_set(updated.intersection(bound)),
                },
            ));
        }
        if !self.decomp.schema().is_key(bound) {
            return Err(CoreError::Spec(relc_spec::SpecError::RemoveNotByKey {
                dom: self.decomp.schema().catalog().render_set(bound),
            }));
        }
        let touched: Vec<EdgeId> = self
            .decomp
            .edges()
            .filter(|(_, em)| !em.cols.is_disjoint(updated))
            .map(|(e, _)| e)
            .collect();
        if let Some(steps) = self.plan_in_place(bound, updated, &touched) {
            return Ok(UpdatePlan::InPlace(InPlaceUpdate {
                steps,
                updated,
                touched,
            }));
        }
        let remove = self.plan_remove(bound)?;
        let insert = Arc::new(self.plan_insert(self.decomp.schema().columns())?);
        Ok(UpdatePlan::General(GeneralUpdate {
            remove,
            insert,
            updated,
            touched,
        }))
    }

    /// Attempts to compile the in-place fast path; `None` means the update
    /// is not key-position-preserving (or the placement makes the fast path
    /// unreachable) and the general plan must be used.
    fn plan_in_place(
        &self,
        bound: ColumnSet,
        updated: ColumnSet,
        touched: &[EdgeId],
    ) -> Option<Vec<InPlaceStep>> {
        // Eligibility: the updated columns must intersect no edge source's
        // key columns. Then any node binding an updated column is a sink
        // (it can be the source of no edge), every affected sink is the
        // target of touched edges only, and every untouched container
        // keeps the tuple at an unchanged position.
        for (_, em) in self.decomp.edges() {
            if !updated.is_disjoint(self.decomp.node(em.src).key_cols) {
                return None;
            }
        }
        // A touched edge under §4.5 speculation would need the target-side
        // re-validation protocol replayed around the rewrite; only a
        // degenerate root→sink edge can hit this, so fall back instead.
        if touched.iter().any(|&e| self.placement.edge(e).speculative) {
            return None;
        }
        // The locate set: the cheapest valid chain from the root to every
        // touched edge's source, plus the touched edges themselves.
        let mut need: std::collections::BTreeSet<EdgeId> = touched.iter().copied().collect();
        for &e in touched {
            need.extend(self.cheapest_chain_to(self.decomp.edge(e).src, bound)?);
        }
        // Compile the steps in mutation order; `known` accumulates the
        // bound columns, exactly as the executor's traversal will bind
        // them.
        let mut steps = Vec::with_capacity(need.len());
        let mut known = bound;
        for e in self.mutation_order() {
            if !need.contains(&e) {
                continue;
            }
            let em = self.decomp.edge(e);
            let ep = self.placement.edge(e);
            let is_touched = touched.contains(&e);
            let kind = if em.cols.is_subset(known) {
                MutTraverse::Lookup
            } else {
                if ep.speculative {
                    return None; // cannot scan a speculative edge (§4.5)
                }
                MutTraverse::Scan
            };
            known = known.union(em.cols);
            let a_src = self.decomp.node(em.src).key_cols;
            // Scans read — and touched rewrites may move entries across —
            // the whole container instance; when striping by non-source
            // columns splits it, every stripe must be held.
            let all_stripes = !ep.stripe_by.is_subset(a_src)
                && self.placement.stripe_count(ep.host) > 1
                && (is_touched || kind == MutTraverse::Scan);
            let mode = if is_touched {
                LockMode::Exclusive
            } else {
                self.placement.read_mode(e)
            };
            steps.push(InPlaceStep {
                edge: e,
                kind,
                mode,
                touched: is_touched,
                all_stripes,
            });
        }
        self.promote_colliding_modes(&mut steps);
        Some(steps)
    }

    /// Lock sites (decomposition nodes whose instances hold the physical
    /// locks) a step can acquire: the placement host, plus the edge target
    /// for speculative lookups.
    fn step_lock_sites(&self, step: &InPlaceStep) -> Vec<crate::decomp::NodeId> {
        let ep = self.placement.edge(step.edge);
        if ep.speculative {
            vec![ep.host, self.decomp.edge(step.edge).dst]
        } else {
            vec![ep.host]
        }
    }

    /// One physical lock requested shared by one step and exclusive by a
    /// later one would force an upgrade restart on *every* execution;
    /// promote shared steps whose lock sites collide with an exclusive
    /// step's sites, to a fixpoint.
    fn promote_colliding_modes(&self, steps: &mut [InPlaceStep]) {
        let mut exclusive_nodes: std::collections::BTreeSet<crate::decomp::NodeId> = steps
            .iter()
            .filter(|s| s.mode == LockMode::Exclusive)
            .flat_map(|s| self.step_lock_sites(s))
            .collect();
        loop {
            let mut changed = false;
            for step in steps.iter_mut() {
                if step.mode == LockMode::Exclusive {
                    continue;
                }
                let sites = self.step_lock_sites(step);
                if sites.iter().any(|n| exclusive_nodes.contains(n)) {
                    step.mode = LockMode::Exclusive;
                    exclusive_nodes.extend(sites);
                    changed = true;
                }
            }
            if !changed {
                return;
            }
        }
    }

    /// The cheapest chain of edges from the root to `target` that is valid
    /// under the placement (speculative edges cannot be scanned), starting
    /// from the pattern columns `bound`. `None` if no valid chain exists.
    fn cheapest_chain_to(
        &self,
        target: crate::decomp::NodeId,
        bound: ColumnSet,
    ) -> Option<Vec<EdgeId>> {
        let mut best: Option<(f64, Vec<EdgeId>)> = None;
        let mut chain = Vec::new();
        self.chains_to(
            self.decomp.root(),
            target,
            bound,
            0.0,
            1.0,
            &mut chain,
            &mut best,
        );
        best.map(|(_, c)| c)
    }

    #[allow(clippy::too_many_arguments)]
    fn chains_to(
        &self,
        node: crate::decomp::NodeId,
        target: crate::decomp::NodeId,
        known: ColumnSet,
        cost: f64,
        states: f64,
        chain: &mut Vec<EdgeId>,
        best: &mut Option<(f64, Vec<EdgeId>)>,
    ) {
        if node == target {
            if best.as_ref().is_none_or(|(c, _)| cost < *c) {
                *best = Some((cost, chain.clone()));
            }
            return;
        }
        for &e in &self.decomp.node(node).outgoing {
            let em = self.decomp.edge(e);
            let ep = self.placement.edge(e);
            let point = em.cols.is_subset(known);
            let (step_cost, next_states) = if point {
                let spec_overhead = if ep.speculative { 2.0 } else { 1.0 };
                (lookup_cost(em.container) * spec_overhead, states)
            } else {
                if ep.speculative {
                    continue; // cannot scan a speculative edge
                }
                let fanout = if em.singleton { 1.0 } else { DEFAULT_FANOUT };
                (SCAN_SETUP_COST + fanout * SCAN_ENTRY_COST, states * fanout)
            };
            chain.push(e);
            self.chains_to(
                em.dst,
                target,
                known.union(em.cols),
                cost + states * step_cost,
                next_states,
                chain,
                best,
            );
            chain.pop();
        }
    }

    /// Renders a query plan in the paper's `let` notation (§5.2).
    pub fn render(&self, plan: &Plan) -> String {
        render_plan(&self.decomp, &plan.steps)
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plan({} steps, cost {:.1})", self.steps.len(), self.cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::library::{dcache, diamond, split, stick};

    fn cols(d: &Decomposition, names: &[&str]) -> ColumnSet {
        d.schema().column_set(names).unwrap()
    }

    #[test]
    fn successor_query_on_split_uses_src_branch() {
        let d = split(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
        let p = LockPlacement::fine(&d).unwrap();
        let planner = Planner::new(d.clone(), p);
        let plan = planner
            .plan_query(cols(&d, &["src"]), cols(&d, &["dst", "weight"]))
            .unwrap();
        // First traversal must be a lookup of the src-keyed edge ρu.
        let ru = d.edge_between("ρ", "u").unwrap();
        assert!(plan.steps.iter().any(|s| matches!(s,
            PlanStep::Lookup { edge } if *edge == ru)));
        // And it must not touch the dst-side branch.
        let rv = d.edge_between("ρ", "v").unwrap();
        assert!(!plan.steps.iter().any(|s| s.edge() == rv));
    }

    #[test]
    fn predecessor_query_on_stick_requires_full_scan() {
        let d = stick(ContainerKind::HashMap, ContainerKind::HashMap);
        let p = LockPlacement::coarse(&d).unwrap();
        let planner = Planner::new(d.clone(), p);
        // find-predecessors: bind dst, want src+weight. The stick must scan
        // the src level.
        let plan = planner
            .plan_query(cols(&d, &["dst"]), cols(&d, &["src", "weight"]))
            .unwrap();
        let ru = d.edge_between("ρ", "u").unwrap();
        assert!(plan.steps.iter().any(|s| matches!(s,
            PlanStep::Scan { edge } if *edge == ru)));
        // Compare with the successors plan, which should be much cheaper.
        let succ = planner
            .plan_query(cols(&d, &["src"]), cols(&d, &["dst", "weight"]))
            .unwrap();
        assert!(
            succ.cost < plan.cost,
            "successors {} < predecessors {}",
            succ.cost,
            plan.cost
        );
    }

    #[test]
    fn dcache_point_query_prefers_hash_shortcut() {
        // Fig. 2: lookup by (parent, name) should use the ρ→y hash edge, not
        // the two-level tree path.
        let d = dcache();
        let p = LockPlacement::fine(&d).unwrap();
        let planner = Planner::new(d.clone(), p);
        let plan = planner
            .plan_query(cols(&d, &["parent", "name"]), cols(&d, &["child"]))
            .unwrap();
        let ry = d.edge_between("ρ", "y").unwrap();
        assert!(
            plan.steps
                .iter()
                .any(|s| matches!(s, PlanStep::Lookup { edge } if *edge == ry)),
            "should shortcut through the hash index: {}",
            planner.render(&plan)
        );
    }

    #[test]
    fn dcache_full_iteration_matches_paper_plan2() {
        // §5.2 plan (2): lock ρ, scan(ρy), scan(yz), unlock, return — under
        // the coarse placement.
        let d = dcache();
        let p = LockPlacement::coarse(&d).unwrap();
        let planner = Planner::new(d.clone(), p);
        let plan = planner
            .plan_query(ColumnSet::EMPTY, d.schema().columns())
            .unwrap();
        let rendered = planner.render(&plan);
        // Whichever chain is chosen, it must scan to cover all columns and
        // end with the singleton child edge.
        assert!(rendered.contains("scan"), "{rendered}");
        assert!(rendered.contains("unlock"), "{rendered}");
        // The cheapest chain is the 2-edge one: ρy then yz (plan (2), not
        // the 3-edge plan (3)).
        let ry = d.edge_between("ρ", "y").unwrap();
        assert!(plan.steps.iter().any(|s| s.edge() == ry), "{rendered}");
        assert_eq!(
            plan.steps.iter().filter(|s| !s.is_lock()).count(),
            2,
            "two traversals: {rendered}"
        );
    }

    #[test]
    fn speculative_edges_forbid_scans() {
        let d = diamond(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
        let p = LockPlacement::speculative(&d, 8).unwrap();
        let planner = Planner::new(d.clone(), p);
        // Point query by (src) is fine: speculative lookup.
        let plan = planner
            .plan_query(cols(&d, &["src"]), cols(&d, &["dst", "weight"]))
            .unwrap();
        assert!(plan
            .steps
            .iter()
            .any(|s| matches!(s, PlanStep::SpecLookup { .. })));
        // Full iteration must scan ρx or ρy — impossible: no valid plan.
        let err = planner
            .plan_query(ColumnSet::EMPTY, d.schema().columns())
            .unwrap_err();
        assert!(matches!(err, CoreError::NoValidPlan(_)));
    }

    #[test]
    fn sort_elision_flags_follow_container_sortedness() {
        // Sorted containers (TreeMap) keep the chain sorted; HashMap breaks
        // it.
        let d = stick(ContainerKind::TreeMap, ContainerKind::TreeMap);
        let p = LockPlacement::fine(&d).unwrap();
        let planner = Planner::new(d.clone(), p);
        let plan = planner
            .plan_query(ColumnSet::EMPTY, d.schema().columns())
            .unwrap();
        let flags: Vec<bool> = plan
            .steps
            .iter()
            .filter_map(|s| match s {
                PlanStep::Lock { presorted, .. } => Some(*presorted),
                _ => None,
            })
            .collect();
        assert!(
            flags.iter().all(|&f| f),
            "TreeMap chain stays sorted: {flags:?}"
        );

        let d = stick(ContainerKind::HashMap, ContainerKind::HashMap);
        let p = LockPlacement::fine(&d).unwrap();
        let planner = Planner::new(d.clone(), p);
        let plan = planner
            .plan_query(ColumnSet::EMPTY, d.schema().columns())
            .unwrap();
        let flags: Vec<bool> = plan
            .steps
            .iter()
            .filter_map(|s| match s {
                PlanStep::Lock { presorted, .. } => Some(*presorted),
                _ => None,
            })
            .collect();
        assert!(flags[0], "first lock over one state is trivially sorted");
        assert!(
            !flags[2],
            "after an unsorted scan the lock set needs sorting"
        );
    }

    #[test]
    fn mutation_order_binds_sources_first() {
        for d in [
            stick(ContainerKind::HashMap, ContainerKind::HashMap),
            split(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap),
            diamond(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap),
            dcache(),
        ] {
            for p in [
                LockPlacement::coarse(&d).unwrap(),
                LockPlacement::fine(&d).unwrap(),
            ] {
                let planner = Planner::new(d.clone(), p);
                let order = planner.mutation_order();
                assert_eq!(order.len(), d.edge_count());
                // Every edge's source must be bound (reached) by an earlier
                // edge, or be the root.
                let mut bound = vec![false; d.node_count()];
                bound[d.root().index()] = true;
                for e in order {
                    let em = d.edge(e);
                    assert!(bound[em.src.index()], "source bound before edge {e:?}");
                    bound[em.dst.index()] = true;
                }
            }
        }
    }

    #[test]
    fn insert_plan_check_chain_covers_key() {
        let d = split(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
        let p = LockPlacement::fine(&d).unwrap();
        let planner = Planner::new(d.clone(), p);
        let plan = planner.plan_insert(cols(&d, &["src", "dst"])).unwrap();
        assert_eq!(plan.edges.len(), d.edge_count());
        // The check chain should be pure lookups (src, dst both bound).
        assert!(plan.check.iter().all(|(_, k)| *k == MutTraverse::Lookup));
        let covered: ColumnSet = plan
            .check
            .iter()
            .fold(ColumnSet::EMPTY, |acc, (e, _)| acc.union(d.edge(*e).cols));
        assert!(cols(&d, &["src", "dst"]).is_subset(covered));
    }

    #[test]
    fn remove_plan_requires_key() {
        let d = stick(ContainerKind::HashMap, ContainerKind::HashMap);
        let p = LockPlacement::coarse(&d).unwrap();
        let planner = Planner::new(d.clone(), p);
        assert!(planner.plan_remove(cols(&d, &["src", "dst"])).is_ok());
        // src alone is not a key.
        assert!(matches!(
            planner.plan_remove(cols(&d, &["src"])),
            Err(CoreError::Spec(_))
        ));
        // Full tuples are keys.
        assert!(planner
            .plan_remove(cols(&d, &["src", "dst", "weight"]))
            .is_ok());
    }

    #[test]
    fn remove_plan_mixes_lookups_and_scans() {
        let d = stick(ContainerKind::HashMap, ContainerKind::HashMap);
        let p = LockPlacement::coarse(&d).unwrap();
        let planner = Planner::new(d.clone(), p);
        let plan = planner.plan_remove(cols(&d, &["src", "dst"])).unwrap();
        let kinds: Vec<MutTraverse> = plan.edges.iter().map(|(_, k)| *k).collect();
        // src, dst edges are lookups; the weight edge must be scanned.
        assert_eq!(
            kinds,
            vec![MutTraverse::Lookup, MutTraverse::Lookup, MutTraverse::Scan]
        );
        assert!(plan.all_stripes.iter().all(|&b| !b));
    }

    #[test]
    fn remove_under_speculation_works_for_keys() {
        let d = diamond(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
        let p = LockPlacement::speculative(&d, 8).unwrap();
        let planner = Planner::new(d.clone(), p);
        // (src, dst) binds both speculative edges via lookups: fine.
        assert!(planner.plan_remove(cols(&d, &["src", "dst"])).is_ok());
    }

    #[test]
    fn update_plan_validates_and_records_touched_edges() {
        let d = stick(ContainerKind::HashMap, ContainerKind::TreeMap);
        let p = LockPlacement::coarse(&d).unwrap();
        let planner = Planner::new(d.clone(), p);
        let plan = planner
            .plan_update(cols(&d, &["src", "dst"]), cols(&d, &["weight"]))
            .unwrap();
        // Only the weight edge is rewritten by a weight update, and weight
        // lives only in the sink's key: the fast path applies.
        let vw = d.edge_between("v", "w").unwrap();
        assert_eq!(plan.touched(), &[vw]);
        assert_eq!(plan.updated(), cols(&d, &["weight"]));
        let UpdatePlan::InPlace(ip) = &plan else {
            panic!("weight update on the stick must take the fast path");
        };
        // Steps cover the locate chain ρ→u→v plus the touched edge v→w.
        assert_eq!(ip.steps.len(), d.edge_count());
        let last = ip.steps.last().unwrap();
        assert_eq!(last.edge, vw);
        assert!(last.touched);
        assert_eq!(last.mode, LockMode::Exclusive);
        // The old weight is unknown until the touched edge is read: scan.
        assert_eq!(last.kind, MutTraverse::Scan);
        // Under the coarse placement every step shares the root lock, so
        // mode promotion must make the whole plan exclusive (a shared-then-
        // exclusive request on one lock would restart every execution).
        assert!(ip.steps.iter().all(|s| s.mode == LockMode::Exclusive));

        // Assignment overlapping the key pattern is rejected.
        assert!(matches!(
            planner.plan_update(cols(&d, &["src", "dst"]), cols(&d, &["dst"])),
            Err(CoreError::Spec(
                relc_spec::SpecError::UpdateOverlapsPattern { .. }
            ))
        ));
        // Empty assignment is rejected.
        assert!(matches!(
            planner.plan_update(cols(&d, &["src", "dst"]), ColumnSet::EMPTY),
            Err(CoreError::Spec(relc_spec::SpecError::EmptyUpdate))
        ));
        // Non-key pattern is rejected.
        assert!(matches!(
            planner.plan_update(cols(&d, &["src"]), cols(&d, &["weight"])),
            Err(CoreError::Spec(relc_spec::SpecError::RemoveNotByKey { .. }))
        ));
    }

    #[test]
    fn update_fast_path_classification() {
        // Fine placement on the split: touched edges are hosted at their
        // sources (per-key locks), the root chains stay shared.
        let d = split(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
        let p = LockPlacement::fine(&d).unwrap();
        let planner = Planner::new(d.clone(), p);
        let plan = planner
            .plan_update(cols(&d, &["src", "dst"]), cols(&d, &["weight"]))
            .unwrap();
        let UpdatePlan::InPlace(ip) = &plan else {
            panic!("weight update on the split must take the fast path");
        };
        let wx = d.edge_between("w", "x").unwrap();
        let yz = d.edge_between("y", "z").unwrap();
        let mut touched = plan.touched().to_vec();
        touched.sort();
        assert_eq!(touched, vec![wx, yz]);
        // Both branches must be traversed: 6 steps, 2 touched.
        assert_eq!(ip.steps.len(), d.edge_count());
        assert_eq!(ip.steps.iter().filter(|s| s.touched).count(), 2);
        // Non-touched traversal stays in shared mode (hosts are disjoint
        // from the touched hosts under the fine placement).
        assert!(ip
            .steps
            .iter()
            .filter(|s| !s.touched)
            .all(|s| s.mode == LockMode::Shared));
        // The first touched edge in mutation order scans for the old
        // values; the second finds them bound and downgrades to a lookup.
        let touched_kinds: Vec<MutTraverse> = ip
            .steps
            .iter()
            .filter(|s| s.touched)
            .map(|s| s.kind)
            .collect();
        assert_eq!(touched_kinds, vec![MutTraverse::Scan, MutTraverse::Lookup]);

        // A chain binding the updated column mid-path disqualifies the
        // fast path: weight sits in a non-sink node's key.
        let schema = relc_spec::library::graph_schema();
        let mut b = Decomposition::builder(schema);
        let root = b.root();
        let a = b.node("a");
        let c = b.node("c");
        b.edge(root, a, &["src", "weight"], ContainerKind::HashMap)
            .unwrap();
        b.edge(a, c, &["dst"], ContainerKind::HashMap).unwrap();
        let d2 = b.build().unwrap();
        let p2 = LockPlacement::coarse(&d2).unwrap();
        let planner2 = Planner::new(d2.clone(), p2);
        let plan2 = planner2
            .plan_update(cols(&d2, &["src", "dst"]), cols(&d2, &["weight"]))
            .unwrap();
        assert!(
            matches!(plan2, UpdatePlan::General(_)),
            "weight in a non-sink key forces the general path"
        );

        // The diamond under speculation: the touched sink edge is not
        // speculative (only root edges are), so the fast path still
        // applies, locating through one speculative lookup.
        let d3 = diamond(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
        let p3 = LockPlacement::speculative(&d3, 8).unwrap();
        let planner3 = Planner::new(d3.clone(), p3);
        let plan3 = planner3
            .plan_update(cols(&d3, &["src", "dst"]), cols(&d3, &["weight"]))
            .unwrap();
        let UpdatePlan::InPlace(ip3) = &plan3 else {
            panic!("diamond/speculative weight update must take the fast path");
        };
        // One chain to w suffices (through ρ→x or ρ→y), plus w→z: 3 steps.
        assert_eq!(ip3.steps.len(), 3);
    }

    #[test]
    fn query_plan_cache_key_is_shape_only() {
        // Same bound/output shapes give structurally identical plans.
        let d = stick(ContainerKind::TreeMap, ContainerKind::TreeMap);
        let p = LockPlacement::fine(&d).unwrap();
        let planner = Planner::new(d.clone(), p);
        let a = planner
            .plan_query(cols(&d, &["src"]), cols(&d, &["dst"]))
            .unwrap();
        let b = planner
            .plan_query(cols(&d, &["src"]), cols(&d, &["dst"]))
            .unwrap();
        assert_eq!(a.steps, b.steps);
    }
}
