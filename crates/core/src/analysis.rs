//! Static lock-discipline analysis over compiled plans (§4.3/§5.1).
//!
//! The [`Analyzer`] symbolically executes every plan shape the planner can
//! emit — query chains, existence checks, insert, remove, in-place and
//! general updates, `insert_all`/`remove_all` batch sweeps — against a
//! `(Decomposition, LockPlacement)` pair, tracking an abstract held-lock
//! set in [`LockToken`](crate::placement::LockToken) space, and verifies:
//!
//! * **Coverage/domination** — every edge read is dominated by a
//!   shared-or-stronger hold of the physical locks implementing its
//!   logical lock, and every container mutation by an exclusive hold,
//!   modeling striped placements (unbound stripe columns ⇒ all-`k`
//!   acquisition, §4.4) and speculative target-vs-fallback locking
//!   (§4.5). Unlocked reads (the insert existence check) are justified by
//!   *exclusion*: on every root→source path some edge's lock set is held
//!   exclusively in full, so no conflicting transaction can reach the
//!   instance being read.
//! * **Ordering** — acquisitions at blocking sites are monotone in the
//!   §5.1 `(node position, instance key, stripe)` order; batch sweeps are
//!   globally sorted; the sharded extension is lexicographic over
//!   `(shard, token)`.
//! * **No shared→exclusive upgrade** — the planner's mode-promotion pass
//!   promoted every lock that a later step needs exclusively, so no
//!   execution is forced into an upgrade restart.
//! * **MVCC write-side completeness** — every plan step that mutates an
//!   edge container has a corresponding `mvcc_write` mirror site, so no
//!   version chain can silently go stale.
//!
//! The symbolic domain replaces runtime tuples with *origins*: a column is
//! bound either by an operand (`Origin::Operand(row)`) or by a scan fanout
//! (`Origin::Scanned(id)`, one fresh id per scan step). Two abstract
//! instances with equal origin vectors denote the same runtime instance;
//! unequal vectors denote instances whose key order is statically unknown.
//! Token comparison is therefore *partial* — the engine model only flags
//! an ordering violation when a pair is provably inverted at a site the
//! executor expects to be in order (unknown pairs fall back to the
//! engine's try-and-restart rule, which is deadlock-free by design).
//!
//! [`AnalyzerOptions`] can seed deliberate discipline violations (skip the
//! sweep sort, undo mode promotion, drop an MVCC mirror site); together
//! with [`PlacementBuilder::build_unchecked`](crate::placement::PlacementBuilder::build_unchecked)
//! (non-dominating hosts) these drive the rejection battery that proves
//! the analyzer flags each violation class with a step-level diagnostic.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use relc_locks::LockMode;
use relc_spec::{ColumnId, ColumnSet};

use crate::decomp::{Decomposition, EdgeId, NodeId};
use crate::error::CoreError;
use crate::placement::LockPlacement;
use crate::planner::{
    InPlaceUpdate, InsertPlan, MutTraverse, Plan, Planner, RemovePlan, UpdatePlan,
};
use crate::query::PlanStep;

/// Where a column's symbolic value came from.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
enum Origin {
    /// Bound by the operation's pattern/tuple; the index distinguishes
    /// operand namespaces (batch rows, or an update's `t` tuple).
    Operand(u8),
    /// Bound by a scan fanout; each scan step mints a fresh id, so equal
    /// ids mean "the same unknown entry" within one symbolic execution.
    Scanned(u32),
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Origin::Operand(0) => write!(f, "∗"),
            Origin::Operand(r) => write!(f, "∗{r}"),
            Origin::Scanned(i) => write!(f, "scan#{i}"),
        }
    }
}

/// An abstract node-instance identity: the origins of its key columns,
/// sorted by column id. Equal vectors ⇒ the same runtime instance.
type AbsInstance = Vec<(ColumnId, Origin)>;

/// An abstract stripe index at a host instance.
#[derive(Clone, PartialEq, Eq, Debug)]
enum AbsStripe {
    /// A concrete stripe index (empty `stripe_by`, `k == 1`, or one leg of
    /// a conservative all-`k` acquisition).
    At(u32),
    /// `hash(proj(t, stripe_by)) mod k` for a tuple whose `stripe_by`
    /// projection has these origins. Equal vectors ⇒ equal stripe.
    Hashed(Vec<(ColumnId, Origin)>),
}

/// An abstract [`LockToken`](crate::placement::LockToken).
#[derive(Clone, PartialEq, Eq, Debug)]
struct AbsToken {
    node_pos: u16,
    node: NodeId,
    instance: AbsInstance,
    stripe: AbsStripe,
}

impl AbsToken {
    /// Partial §5.1 comparison: `None` when the runtime order of the two
    /// tokens is not statically determined (distinct instance classes, or
    /// a hashed stripe against anything but itself).
    fn partial_cmp_token(&self, other: &AbsToken) -> Option<Ordering> {
        match self.node_pos.cmp(&other.node_pos) {
            Ordering::Equal => {}
            o => return Some(o),
        }
        if self.instance != other.instance {
            return None;
        }
        match (&self.stripe, &other.stripe) {
            (AbsStripe::At(a), AbsStripe::At(b)) => Some(a.cmp(b)),
            (AbsStripe::Hashed(a), AbsStripe::Hashed(b)) if a == b => Some(Ordering::Equal),
            _ => None,
        }
    }
}

/// The violation classes the analyzer reports.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DiagnosticKind {
    /// §4.3 condition 1: an edge's lock host does not dominate its source.
    NonDominatingHost,
    /// §4.3 condition 2: an edge on a host→source path is not protected by
    /// the same lock.
    PathSharingViolated,
    /// A lock host whose instance key is not bound when the lock must be
    /// taken — the operational face of a non-dominating host.
    HostUnbound,
    /// An edge read with neither a covering held lock nor a root→source
    /// exclusion gate.
    UncoveredRead,
    /// A container mutation without an exclusive covering hold.
    UncoveredWrite,
    /// A blocking acquisition provably below an already-held token in the
    /// §5.1 order.
    OutOfOrder,
    /// A batch sweep whose token sequence is not sorted.
    UnsortedSweep,
    /// An exclusive acquisition of a token held shared — the promotion
    /// pass missed a lock that a later step needs exclusively.
    SharedToExclusiveUpgrade,
    /// A plan claims its lock batch is presorted (§5.2 sort elision) but
    /// the chain's scan order does not match the token order.
    PresortedUnsound,
    /// A container mutation with no `mvcc_write` mirror site.
    MissingMvccMirror,
}

impl fmt::Display for DiagnosticKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DiagnosticKind::NonDominatingHost => "non-dominating host",
            DiagnosticKind::PathSharingViolated => "path-sharing violated",
            DiagnosticKind::HostUnbound => "host unbound at lock site",
            DiagnosticKind::UncoveredRead => "uncovered read",
            DiagnosticKind::UncoveredWrite => "uncovered write",
            DiagnosticKind::OutOfOrder => "out-of-order acquisition",
            DiagnosticKind::UnsortedSweep => "unsorted batch sweep",
            DiagnosticKind::SharedToExclusiveUpgrade => "shared→exclusive upgrade",
            DiagnosticKind::PresortedUnsound => "unsound presorted claim",
            DiagnosticKind::MissingMvccMirror => "missing MVCC mirror",
        };
        f.write_str(s)
    }
}

/// One analyzer finding: the operation shape, the plan step it anchors to,
/// the violation class, the token(s) involved, and a human explanation.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// The operation shape, e.g. `insert bound={dst}`.
    pub op: String,
    /// The plan step index the finding anchors to, when step-scoped.
    pub step: Option<usize>,
    /// The violation class.
    pub kind: DiagnosticKind,
    /// Rendered abstract tokens involved (the token pair for ordering
    /// violations; the missing tokens for coverage violations).
    pub tokens: Vec<String>,
    /// Free-form explanation.
    pub detail: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.kind, self.op)?;
        if let Some(s) = self.step {
            write!(f, " step {s}")?;
        }
        if !self.tokens.is_empty() {
            write!(f, " tokens: {}", self.tokens.join(", "))?;
        }
        if !self.detail.is_empty() {
            write!(f, " — {}", self.detail)?;
        }
        Ok(())
    }
}

/// Seeded-violation knobs: each models the *omission* of one enforcement
/// layer, so the rejection battery can prove the analyzer detects its
/// absence. All default to `false`/`None` (analyze the real discipline).
#[derive(Clone, Default)]
pub struct AnalyzerOptions {
    /// Model an executor that forgets the `mvcc_write` mirror at every
    /// mutation of this edge.
    pub suppress_mirror: Option<EdgeId>,
    /// Model an executor whose bulk sweeps skip the global token sort.
    pub suppress_sweep_sort: bool,
    /// Model a planner without the mode-promotion pass: in-place update
    /// steps keep their raw (unpromoted) modes.
    pub suppress_promotion: bool,
    /// Model a planner that claims §5.2 sort elision on every lock step;
    /// the analyzer must flag each step whose chain order does not
    /// actually match the token order.
    pub force_presorted: bool,
    /// Model a sharded layer that fails to demote lower-shard revisits to
    /// try-only acquisitions (see
    /// [`Analyzer::analyze_sharded_order`]).
    pub suppress_shard_demotion: bool,
    /// Model an executor that locks only one stripe before a range scan —
    /// as if the range interval routed the traversal to a single stripe
    /// the way a point lookup's key does. A range scan can visit entries
    /// in *every* stripe, so the analyzer must flag the scan's read as
    /// uncovered on striped hosts.
    pub demote_range_lock: bool,
    /// Model a live-migration cutover whose fence locks only the first
    /// stripe of each root-hosted edge instead of the full all-stripe
    /// sweep — an under-locked cutover that fails to drain writers
    /// parked on the other stripes. On striped placements the frozen-cut
    /// reads and the root-swap publication writes must be flagged (see
    /// [`Analyzer::analyze_migration`]).
    pub suppress_migration_fence: bool,
}

/// How strictly an acquisition site treats ordering. Blocking sites are
/// expected to be monotone (the executor would block there); tolerant
/// sites knowingly acquire out of order and rely on the engine's
/// try-and-restart rule.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Site {
    Blocking,
    /// A blocking bulk sweep: ordering violations are reported as
    /// [`DiagnosticKind::UnsortedSweep`].
    Sweep,
    Tolerant,
}

/// A symbolic traversal state: per-column origins plus the set of bound
/// node instances (their identities are the key-column projections of the
/// origin map, fixed at binding time because origins are never rebound).
#[derive(Clone)]
struct SymState {
    cols: Vec<Option<Origin>>,
    bound: Vec<bool>,
}

impl SymState {
    fn operand(decomp: &Decomposition, bound_cols: ColumnSet, row: u8) -> Self {
        let n = decomp.schema().catalog().len();
        let mut cols = vec![None; n];
        for c in bound_cols.iter() {
            cols[c.index()] = Some(Origin::Operand(row));
        }
        let mut bound = vec![false; decomp.node_count()];
        bound[decomp.root().index()] = true;
        SymState { cols, bound }
    }

    /// The origin projection onto `cols`; `None` if any column is unbound.
    fn project(&self, cols: ColumnSet) -> Option<Vec<(ColumnId, Origin)>> {
        let mut out = Vec::with_capacity(cols.len());
        for c in cols.iter() {
            out.push((c, self.cols[c.index()]?));
        }
        Some(out)
    }

    /// Binds every unbound column in `cols` to a fresh scan origin.
    fn scan_bind(&mut self, cols: ColumnSet, next_scan: &mut u32) {
        for c in cols.iter() {
            if self.cols[c.index()].is_none() {
                self.cols[c.index()] = Some(Origin::Scanned(*next_scan));
                *next_scan += 1;
            }
        }
    }
}

/// The symbolic two-phase engine plus coverage checker for one operation.
struct SymExec<'a> {
    decomp: &'a Decomposition,
    placement: &'a LockPlacement,
    options: &'a AnalyzerOptions,
    op: String,
    /// `(token, mode, ordered)` — `ordered` is false for tolerant-site
    /// acquisitions (spec targets, post-scan candidates): the engine's
    /// dynamic order check already demotes conflicts against them to
    /// try-and-restart, so they are not baselines for §5.1 monotonicity.
    held: Vec<(AbsToken, LockMode, bool)>,
    next_scan: u32,
    diags: Vec<Diagnostic>,
}

impl<'a> SymExec<'a> {
    fn new(
        decomp: &'a Decomposition,
        placement: &'a LockPlacement,
        options: &'a AnalyzerOptions,
        op: String,
    ) -> Self {
        SymExec {
            decomp,
            placement,
            options,
            op,
            held: Vec::new(),
            next_scan: 0,
            diags: Vec::new(),
        }
    }

    fn diag(
        &mut self,
        kind: DiagnosticKind,
        step: Option<usize>,
        tokens: Vec<String>,
        detail: String,
    ) {
        self.diags.push(Diagnostic {
            op: self.op.clone(),
            step,
            kind,
            tokens,
            detail,
        });
    }

    fn render(&self, tok: &AbsToken) -> String {
        let cat = self.decomp.schema().catalog();
        let inst: Vec<String> = tok
            .instance
            .iter()
            .map(|(c, o)| format!("{}={o}", cat.name(*c)))
            .collect();
        let stripe = match &tok.stripe {
            AbsStripe::At(i) => format!("{i}"),
            AbsStripe::Hashed(proj) => {
                let p: Vec<String> = proj
                    .iter()
                    .map(|(c, o)| format!("{}={o}", cat.name(*c)))
                    .collect();
                format!("hash({})", p.join(","))
            }
        };
        format!(
            "lock@{}[{}]#{}",
            self.decomp.node(tok.node).name,
            inst.join(","),
            stripe
        )
    }

    fn token(&self, node: NodeId, instance: AbsInstance, stripe: AbsStripe) -> AbsToken {
        AbsToken {
            node_pos: self.decomp.topo_position(node),
            node,
            instance,
            stripe,
        }
    }

    /// The abstract instance identity of `node` under `st`; reports
    /// [`DiagnosticKind::HostUnbound`] and returns `None` when the key is
    /// not fully bound (a non-dominating host manifests here: the walk
    /// reaches the lock site before any path has bound the host).
    fn host_instance(
        &mut self,
        node: NodeId,
        st: &SymState,
        step: Option<usize>,
    ) -> Option<AbsInstance> {
        let key = self.decomp.node(node).key_cols;
        if !st.bound[node.index()] {
            let name = self.decomp.node(node).name.clone();
            self.diag(
                DiagnosticKind::HostUnbound,
                step,
                vec![],
                format!("lock host `{name}` has no bound instance at the lock site"),
            );
            return None;
        }
        match st.project(key) {
            Some(inst) => Some(inst),
            None => {
                let name = self.decomp.node(node).name.clone();
                self.diag(
                    DiagnosticKind::HostUnbound,
                    step,
                    vec![],
                    format!("lock host `{name}`'s key columns are not bound at the lock site"),
                );
                None
            }
        }
    }

    /// Mirror of [`LockPlacement::fallback_tokens`] in origin space.
    fn fallback_tokens(&mut self, e: EdgeId, st: &SymState, step: Option<usize>) -> Vec<AbsToken> {
        let ep = self.placement.edge(e);
        let Some(inst) = self.host_instance(ep.host, st, step) else {
            return vec![];
        };
        let k = self.placement.stripe_count(ep.host);
        if k == 1 || ep.stripe_by.is_empty() {
            vec![self.token(ep.host, inst, AbsStripe::At(0))]
        } else if let Some(proj) = st.project(ep.stripe_by) {
            vec![self.token(ep.host, inst, AbsStripe::Hashed(proj))]
        } else {
            (0..k)
                .map(|i| self.token(ep.host, inst.clone(), AbsStripe::At(i)))
                .collect()
        }
    }

    /// Mirror of [`LockPlacement::all_stripe_tokens`] in origin space.
    fn all_stripe_tokens(
        &mut self,
        e: EdgeId,
        st: &SymState,
        step: Option<usize>,
    ) -> Vec<AbsToken> {
        let ep = self.placement.edge(e);
        let Some(inst) = self.host_instance(ep.host, st, step) else {
            return vec![];
        };
        (0..self.placement.stripe_count(ep.host))
            .map(|i| self.token(ep.host, inst.clone(), AbsStripe::At(i)))
            .collect()
    }

    /// Mirror of [`LockPlacement::target_token`] (§4.5 present-edge lock).
    fn target_token(&mut self, e: EdgeId, st: &SymState, step: Option<usize>) -> Option<AbsToken> {
        let dst = self.decomp.edge(e).dst;
        let key = self.decomp.node(dst).key_cols;
        let inst = st.project(key)?;
        let _ = step;
        Some(self.token(dst, inst, AbsStripe::At(0)))
    }

    /// One engine acquisition. Covered re-acquisitions are no-ops; an
    /// exclusive request against a shared hold is an upgrade violation;
    /// blocking sites additionally verify §5.1 monotonicity against every
    /// held token with a statically known order.
    fn acquire(&mut self, tok: AbsToken, mode: LockMode, site: Site, step: Option<usize>) {
        if let Some(pos) = self.held.iter().position(|(h, _, _)| *h == tok) {
            let held_mode = self.held[pos].1;
            if held_mode.covers(mode) {
                return;
            }
            let t = self.render(&tok);
            self.diag(
                DiagnosticKind::SharedToExclusiveUpgrade,
                step,
                vec![t],
                "exclusive acquisition of a token already held shared (forces an \
                 upgrade restart on every execution)"
                    .to_owned(),
            );
            self.held[pos].1 = mode;
            return;
        }
        if site != Site::Tolerant {
            let inverted: Vec<String> = self
                .held
                .iter()
                .filter(|(h, _, ordered)| {
                    *ordered && tok.partial_cmp_token(h) == Some(Ordering::Less)
                })
                .map(|(h, _, _)| self.render(h))
                .collect();
            if let Some(prev) = inverted.first() {
                let kind = if site == Site::Sweep {
                    DiagnosticKind::UnsortedSweep
                } else {
                    DiagnosticKind::OutOfOrder
                };
                self.diag(
                    kind,
                    step,
                    vec![prev.clone(), self.render(&tok)],
                    "acquisition provably below an already-held token in the \
                     (node position, instance key, stripe) order"
                        .to_owned(),
                );
            }
        }
        self.held.push((tok, mode, site != Site::Tolerant));
    }

    /// A sorted batch acquisition ([`acquire_sorted_batch`] /
    /// [`acquire_root_sweep`] in the executor): sorts where the partial
    /// order decides (stable for unknown pairs), dedups exact repeats,
    /// then acquires each token. With
    /// [`AnalyzerOptions::suppress_sweep_sort`] the batch is reversed
    /// instead (a forgotten sort under adversarial enumeration order), so
    /// any comparable pair inside the batch surfaces as a violation.
    fn acquire_batch(
        &mut self,
        mut toks: Vec<AbsToken>,
        mode: LockMode,
        site: Site,
        step: Option<usize>,
    ) {
        toks.sort_by(|a, b| a.partial_cmp_token(b).unwrap_or(Ordering::Equal));
        if self.options.suppress_sweep_sort {
            // Model a forgotten sort under adversarial enumeration order:
            // any comparable pair in the batch is now provably inverted.
            toks.reverse();
        }
        toks.dedup();
        for t in toks {
            self.acquire(t, mode, site, step);
        }
    }

    /// Whether `req` (in `mode`) is satisfied by the held set: an exact
    /// hold, or — for a hashed stripe — holding every concrete stripe of
    /// the same host instance.
    fn holds(&self, req: &AbsToken, mode: LockMode) -> bool {
        let direct = self.held.iter().any(|(h, m, _)| h == req && m.covers(mode));
        if direct {
            return true;
        }
        if let AbsStripe::Hashed(_) = req.stripe {
            let k = self.placement.stripe_count(req.node);
            return (0..k).all(|i| {
                self.held.iter().any(|(h, m, _)| {
                    h.node == req.node
                        && h.instance == req.instance
                        && h.stripe == AbsStripe::At(i)
                        && m.covers(mode)
                })
            });
        }
        false
    }

    /// Whether the reader holds, exclusively, every concrete stripe of
    /// `node`'s instance `inst` — total exclusion of any transaction that
    /// must take a lock at that instance.
    fn holds_all_stripes_exclusive(&self, node: NodeId, inst: &AbsInstance) -> bool {
        let k = self.placement.stripe_count(node);
        (0..k).all(|i| {
            self.held.iter().any(|(h, m, _)| {
                h.node == node
                    && h.instance == *inst
                    && h.stripe == AbsStripe::At(i)
                    && *m == LockMode::Exclusive
            })
        })
    }

    /// Coverage check for a read of edge `e` under state `st`. `point`
    /// reads follow one fully bound entry key; whole reads (scans,
    /// emptiness checks) observe every entry of the container instance.
    ///
    /// A read is covered when either
    ///
    /// * **R1 (direct):** the physical locks implementing the edge's
    ///   logical lock for this instance are held in the container's read
    ///   mode or stronger — the §4.3 discipline both readers and writers
    ///   follow; or
    /// * **R2 (exclusion gate):** on *every* root→source path there is an
    ///   edge whose lock set at this state's instance classes is held
    ///   exclusively in full. Any transaction mutating the observed
    ///   container must traverse some root→source path and take that
    ///   edge's lock (the §4.3 domination argument), so the hold excludes
    ///   every conflicting writer — this justifies the executor's
    ///   *unlocked* existence-check reads.
    fn require_read(&mut self, e: EdgeId, st: &SymState, point: bool, step: Option<usize>) {
        let ep = self.placement.edge(e);
        let em = self.decomp.edge(e);
        let mode = self.placement.read_mode(e);
        // Speculative point reads outside the §4.5 protocol are justified
        // by an exclusive hold of the fallback locks (presence freezing);
        // the protocol path is modeled separately by the caller.
        let req_mode = if ep.speculative {
            LockMode::Exclusive
        } else {
            mode
        };
        let required = if point {
            self.fallback_tokens(e, st, step)
        } else {
            let a_src = self.decomp.node(em.src).key_cols;
            let k = self.placement.stripe_count(ep.host);
            let Some(inst) = self.host_instance(ep.host, st, step) else {
                return;
            };
            if k == 1 || ep.stripe_by.is_empty() {
                vec![self.token(ep.host, inst, AbsStripe::At(0))]
            } else if ep.stripe_by.is_subset(a_src) {
                // Entries of one container instance agree on the source
                // key, so they all hash to one stripe.
                match st.project(ep.stripe_by) {
                    Some(proj) => vec![self.token(ep.host, inst, AbsStripe::Hashed(proj))],
                    None => (0..k)
                        .map(|i| self.token(ep.host, inst.clone(), AbsStripe::At(i)))
                        .collect(),
                }
            } else {
                (0..k)
                    .map(|i| self.token(ep.host, inst.clone(), AbsStripe::At(i)))
                    .collect()
            }
        };
        let missing: Vec<&AbsToken> = required
            .iter()
            .filter(|r| !self.holds(r, req_mode))
            .collect();
        if missing.is_empty() {
            return;
        }
        if self.excluded_by_gates(em.src, st) {
            return;
        }
        let toks: Vec<String> = missing.iter().map(|t| self.render(t)).collect();
        let ename = self.edge_name(e);
        self.diag(
            DiagnosticKind::UncoveredRead,
            step,
            toks,
            format!(
                "{} read of edge {ename} is neither lock-covered nor writer-excluded",
                if point { "point" } else { "whole-instance" }
            ),
        );
    }

    /// The R2 exclusion-gate check: every root→`src` path must contain a
    /// *gate* — an edge whose lock acquisition any conflicting transaction
    /// must perform at instance classes projected from this state, where
    /// the reader holds that full lock set exclusively. For a speculative
    /// gate the writer's present-path lock is the target-side lock; for a
    /// normal gate it is the host's stripe set.
    fn excluded_by_gates(&mut self, src: NodeId, st: &SymState) -> bool {
        let root = self.decomp.root();
        if src == root {
            let Some(inst) = st.project(self.decomp.node(root).key_cols) else {
                return false;
            };
            return self.holds_all_stripes_exclusive(root, &inst);
        }
        let paths = self.decomp.paths_between(root, src);
        if paths.is_empty() {
            return false;
        }
        paths
            .iter()
            .all(|path| path.iter().any(|&pe| self.is_exclusion_gate(pe, st)))
    }

    /// Whether the reader's exclusive holds close edge `pe` as a gate for
    /// instances classed by `st` (see [`SymExec::excluded_by_gates`]).
    fn is_exclusion_gate(&self, pe: EdgeId, st: &SymState) -> bool {
        let ep = self.placement.edge(pe);
        if ep.speculative {
            // A writer reaching below a speculative edge holds the
            // target-side lock on the present path (§4.5) *and* — by the
            // executor's fallback-pin rule — at least one fallback stripe
            // at the host, so either side closes the gate: the target
            // instance exclusively, or every host stripe exclusively.
            let dst = self.decomp.edge(pe).dst;
            if let Some(inst) = st.project(self.decomp.node(dst).key_cols) {
                if self.holds_all_stripes_exclusive(dst, &inst) {
                    return true;
                }
            }
            let Some(inst) = st.project(self.decomp.node(ep.host).key_cols) else {
                return false;
            };
            self.holds_all_stripes_exclusive(ep.host, &inst)
        } else {
            let Some(inst) = st.project(self.decomp.node(ep.host).key_cols) else {
                return false;
            };
            self.holds_all_stripes_exclusive(ep.host, &inst)
        }
    }

    /// Coverage check for a container mutation of edge `e`: the entry's
    /// stripe token must be held exclusively (a shared hold is reported as
    /// a missed promotion). `entry` supplies the origins of the written
    /// entry's tuple — for in-place rewrites the new key can hash to a
    /// different stripe than the traversal's. `fresh` marks writes into a
    /// just-materialized, unpublished instance: unreachable by any other
    /// transaction until the publication write, hence self-covered.
    fn require_write(&mut self, e: EdgeId, entry: &SymState, fresh: bool, step: Option<usize>) {
        self.mirror_write(e, step);
        if fresh {
            return;
        }
        let required = self.fallback_tokens(e, entry, step);
        let mut missing = Vec::new();
        for r in &required {
            if self.holds(r, LockMode::Exclusive) {
                continue;
            }
            if self.holds(r, LockMode::Shared) {
                let t = self.render(r);
                self.diag(
                    DiagnosticKind::SharedToExclusiveUpgrade,
                    step,
                    vec![t],
                    format!(
                        "mutation of edge {} under a shared hold — the promotion \
                         pass missed this lock",
                        self.edge_name(e)
                    ),
                );
                continue;
            }
            missing.push(r.clone());
        }
        if missing.is_empty() {
            return;
        }
        let em_src = self.decomp.edge(e).src;
        if self.excluded_by_gates(em_src, entry) {
            return;
        }
        let toks: Vec<String> = missing.iter().map(|t| self.render(t)).collect();
        let ename = self.edge_name(e);
        self.diag(
            DiagnosticKind::UncoveredWrite,
            step,
            toks,
            format!("mutation of edge {ename} without an exclusive covering hold"),
        );
    }

    /// The MVCC write-side completeness table: the executor pairs every
    /// container mutation with an `mvcc_write` mirror under the same
    /// exclusive locks. [`AnalyzerOptions::suppress_mirror`] models a
    /// forgotten site, which must surface as
    /// [`DiagnosticKind::MissingMvccMirror`].
    fn mirror_write(&mut self, e: EdgeId, step: Option<usize>) {
        if self.options.suppress_mirror == Some(e) {
            let ename = self.edge_name(e);
            self.diag(
                DiagnosticKind::MissingMvccMirror,
                step,
                vec![],
                format!(
                    "mutation of edge {ename} has no `mvcc_write` mirror site — \
                     snapshot readers would observe a stale version chain"
                ),
            );
        }
    }

    fn edge_name(&self, e: EdgeId) -> String {
        let em = self.decomp.edge(e);
        format!(
            "{}→{}",
            self.decomp.node(em.src).name,
            self.decomp.node(em.dst).name
        )
    }
}

/// The lock-discipline analyzer: symbolic execution of every plan shape a
/// `(Decomposition, LockPlacement)` pair admits, plus the structural §4.3
/// placement checks. See the module docs for the properties verified.
pub struct Analyzer {
    decomp: Arc<Decomposition>,
    placement: Arc<LockPlacement>,
    planner: Planner,
    options: AnalyzerOptions,
}

impl Analyzer {
    /// Creates an analyzer verifying the real discipline (no seeded
    /// violations).
    pub fn new(decomp: Arc<Decomposition>, placement: Arc<LockPlacement>) -> Self {
        Self::with_options(decomp, placement, AnalyzerOptions::default())
    }

    /// Creates an analyzer with seeded-violation options (the rejection
    /// battery).
    pub fn with_options(
        decomp: Arc<Decomposition>,
        placement: Arc<LockPlacement>,
        options: AnalyzerOptions,
    ) -> Self {
        let planner = Planner::new(Arc::clone(&decomp), Arc::clone(&placement));
        Analyzer {
            decomp,
            placement,
            planner,
            options,
        }
    }

    fn exec(&self, op: String) -> SymExec<'_> {
        SymExec::new(&self.decomp, &self.placement, &self.options, op)
    }

    fn render_set(&self, s: ColumnSet) -> String {
        self.decomp.schema().catalog().render_set(s)
    }

    /// The structural §4.3 well-formedness checks, re-derived independently
    /// of [`PlacementBuilder::build`](crate::placement::PlacementBuilder::build):
    /// every non-speculative edge's host dominates its source, every edge
    /// on a host→source path shares the host's lock, and speculative
    /// placements satisfy the §4.5 prerequisites.
    pub fn check_placement(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let d = &self.decomp;
        for (e, em) in d.edges() {
            let ep = self.placement.edge(e);
            let ename = format!("{}→{}", d.node(em.src).name, d.node(em.dst).name);
            if ep.speculative {
                if em.src != d.root() || ep.host != em.src {
                    out.push(Diagnostic {
                        op: "placement".to_owned(),
                        step: None,
                        kind: DiagnosticKind::NonDominatingHost,
                        tokens: vec![],
                        detail: format!(
                            "speculative edge {ename} must leave the root with its \
                             source as fallback host (§4.5)"
                        ),
                    });
                }
                continue;
            }
            if !d.dominates(ep.host, em.src) {
                out.push(Diagnostic {
                    op: "placement".to_owned(),
                    step: None,
                    kind: DiagnosticKind::NonDominatingHost,
                    tokens: vec![],
                    detail: format!(
                        "edge {ename}: host `{}` does not dominate source `{}` (§4.3)",
                        d.node(ep.host).name,
                        d.node(em.src).name
                    ),
                });
                continue;
            }
            for path in d.paths_between(ep.host, em.src) {
                for pe in path {
                    let other = self.placement.edge(pe);
                    if other.speculative || other.host != ep.host {
                        out.push(Diagnostic {
                            op: "placement".to_owned(),
                            step: None,
                            kind: DiagnosticKind::PathSharingViolated,
                            tokens: vec![],
                            detail: format!(
                                "edge {ename}: path edge {} from host `{}` is not \
                                 protected by the same lock (§4.3)",
                                {
                                    let pm = d.edge(pe);
                                    format!("{}→{}", d.node(pm.src).name, d.node(pm.dst).name)
                                },
                                d.node(ep.host).name
                            ),
                        });
                    }
                }
            }
        }
        out
    }

    /// Walks a compiled query-shaped plan (`Lock`/`Lookup`/`Scan`/
    /// `SpecLookup` steps). `tolerant_after_scan` models the existence
    /// DFS, which knowingly acquires later siblings' locks out of order.
    fn sym_plan_steps(
        &self,
        ex: &mut SymExec<'_>,
        plan: &Plan,
        bound: ColumnSet,
        tolerant_after_scan: bool,
    ) {
        let mut st = SymState::operand(&self.decomp, bound, 0);
        let mut site = Site::Blocking;
        let has_range = plan
            .steps
            .iter()
            .any(|s| matches!(s, PlanStep::RangeScan { .. }));
        // §5.2 sort-elision re-verification state, mirroring
        // `chain_to_plan`.
        let mut chain_sorted = true;
        let mut last_scanned_max: Option<usize> = None;
        for (i, step) in plan.steps.iter().enumerate() {
            let step_no = Some(i);
            match *step {
                PlanStep::Lock {
                    edge,
                    mode,
                    presorted,
                    all_stripes,
                } => {
                    if (presorted || self.options.force_presorted) && !chain_sorted {
                        ex.diag(
                            DiagnosticKind::PresortedUnsound,
                            step_no,
                            vec![],
                            format!(
                                "lock step for edge {} claims §5.2 sort elision, but \
                                 an earlier scan's order does not match the token order",
                                ex.edge_name(edge)
                            ),
                        );
                    }
                    let mut toks = if all_stripes {
                        ex.all_stripe_tokens(edge, &st, step_no)
                    } else {
                        ex.fallback_tokens(edge, &st, step_no)
                    };
                    if self.options.demote_range_lock && has_range {
                        toks.truncate(1);
                    }
                    ex.acquire_batch(toks, mode, site, step_no);
                }
                PlanStep::Lookup { edge } => {
                    ex.require_read(edge, &st, true, step_no);
                    st.bound[self.decomp.edge(edge).dst.index()] = true;
                }
                PlanStep::Scan { edge } => {
                    let em = self.decomp.edge(edge);
                    ex.require_read(edge, &st, false, step_no);
                    st.scan_bind(em.cols, &mut ex.next_scan);
                    st.bound[em.dst.index()] = true;
                    if tolerant_after_scan {
                        site = Site::Tolerant;
                    }
                    let group_min = em.cols.iter().next().map(|c| c.index());
                    let group_max = em.cols.iter().last().map(|c| c.index());
                    chain_sorted = chain_sorted
                        && em.container.props().sorted_scan
                        && match (last_scanned_max, group_min) {
                            (Some(prev_max), Some(min)) => prev_max < min,
                            _ => true,
                        };
                    last_scanned_max = last_scanned_max.max(group_max);
                }
                PlanStep::RangeScan { edge, ordered } => {
                    // Lock-wise a range scan is a scan: the traversal may
                    // touch any entry of the container, so it needs the
                    // same scan-read justification (all stripes for
                    // striped hosts, shared mode otherwise).
                    let em = self.decomp.edge(edge);
                    ex.require_read(edge, &st, false, step_no);
                    st.scan_bind(em.cols, &mut ex.next_scan);
                    st.bound[em.dst.index()] = true;
                    if tolerant_after_scan {
                        site = Site::Tolerant;
                    }
                    // The planner may only claim `ordered` (native bounded
                    // in-order walk, enabling the top-k short-circuit) on a
                    // container whose scan is sorted.
                    if ordered && !em.container.props().sorted_scan {
                        ex.diag(
                            DiagnosticKind::PresortedUnsound,
                            step_no,
                            vec![],
                            format!(
                                "range scan over edge {} claims a native ordered \
                                 walk, but the container's scan is unsorted",
                                ex.edge_name(edge)
                            ),
                        );
                    }
                    let group_min = em.cols.iter().next().map(|c| c.index());
                    let group_max = em.cols.iter().last().map(|c| c.index());
                    chain_sorted = chain_sorted
                        && em.container.props().sorted_scan
                        && match (last_scanned_max, group_min) {
                            (Some(prev_max), Some(min)) => prev_max < min,
                            _ => true,
                        };
                    last_scanned_max = last_scanned_max.max(group_max);
                }
                PlanStep::SpecLookup { edge, mode } => {
                    // §4.5 protocol: the read itself is justified by the
                    // target-side (present) or fallback (absent) lock the
                    // protocol acquires; only the present branch continues
                    // the chain.
                    match ex.target_token(edge, &st, step_no) {
                        Some(tok) => ex.acquire(tok, mode, Site::Tolerant, step_no),
                        None => ex.diag(
                            DiagnosticKind::HostUnbound,
                            step_no,
                            vec![],
                            format!(
                                "speculative target of edge {} is not determined at \
                                 the lookup site",
                                ex.edge_name(edge)
                            ),
                        ),
                    }
                    st.bound[self.decomp.edge(edge).dst.index()] = true;
                }
            }
        }
    }

    /// Analyzes `query r s C` for a pattern binding `bound` with outputs
    /// `output`.
    ///
    /// # Errors
    ///
    /// Propagates planner failures ([`CoreError::NoValidPlan`]).
    pub fn analyze_query(
        &self,
        bound: ColumnSet,
        output: ColumnSet,
    ) -> Result<Vec<Diagnostic>, CoreError> {
        let plan = self.planner.plan_query(bound, output)?;
        let mut ex = self.exec(format!("query bound={}", self.render_set(bound)));
        self.sym_plan_steps(&mut ex, &plan, bound, false);
        Ok(ex.diags)
    }

    /// Analyzes `query_range` for a pattern binding `bound`, an interval
    /// over `range_col`, and outputs `output` — the plan the planner
    /// emits when the range column is free ([`Planner::plan_range`]),
    /// which may contain `RangeScan` steps.
    ///
    /// # Errors
    ///
    /// Propagates planner failures ([`CoreError::NoValidPlan`]).
    pub fn analyze_query_range(
        &self,
        bound: ColumnSet,
        range_col: ColumnId,
        output: ColumnSet,
    ) -> Result<Vec<Diagnostic>, CoreError> {
        let plan = self.planner.plan_range(bound, range_col, output)?;
        let mut ex = self.exec(format!(
            "query_range bound={} col={}",
            self.render_set(bound),
            self.render_set(ColumnSet::single(range_col))
        ));
        self.sym_plan_steps(&mut ex, &plan, bound, false);
        Ok(ex.diags)
    }

    /// Analyzes the existence DFS over the query plan for `bound` (the
    /// executor's `run_exists` shape: later sibling states acquire out of
    /// order and rely on the engine's try-and-restart rule).
    ///
    /// # Errors
    ///
    /// Propagates planner failures.
    pub fn analyze_exists(&self, bound: ColumnSet) -> Result<Vec<Diagnostic>, CoreError> {
        let plan = self.planner.plan_query(bound, ColumnSet::new())?;
        let mut ex = self.exec(format!("exists bound={}", self.render_set(bound)));
        self.sym_plan_steps(&mut ex, &plan, bound, true);
        Ok(ex.diags)
    }

    /// A fully bound symbolic state for operand row `row` (insert/remove
    /// walk bodies reach every node).
    fn full_state(&self, row: u8) -> SymState {
        let mut st = SymState::operand(&self.decomp, self.decomp.schema().columns(), row);
        for b in st.bound.iter_mut() {
            *b = true;
        }
        st
    }

    /// The union of root-hosted lock tokens a bulk sweep acquires for one
    /// pattern state, honoring per-edge force-all flags.
    fn root_sweep_tokens(
        &self,
        ex: &mut SymExec<'_>,
        hosted: &[(EdgeId, bool)],
        st: &SymState,
    ) -> Vec<AbsToken> {
        let mut toks = Vec::new();
        for &(e, force) in hosted {
            if force {
                toks.extend(ex.all_stripe_tokens(e, st, None));
            } else {
                toks.extend(ex.fallback_tokens(e, st, None));
            }
        }
        toks
    }

    /// Root-hosted edges with the force flag `run_insert` derives from
    /// [`InsertPlan::check_has_scan`].
    fn insert_root_hosted(&self, plan: &InsertPlan) -> Vec<(EdgeId, bool)> {
        self.decomp
            .edges()
            .filter(|&(e, _)| self.placement.edge(e).host == self.decomp.root())
            .map(|(e, _)| (e, plan.check_has_scan))
            .collect()
    }

    /// Root-hosted edges with the force flag `run_remove` derives from the
    /// plan's per-edge all-stripes analysis.
    fn remove_root_hosted(&self, plan: &RemovePlan) -> Vec<(EdgeId, bool)> {
        self.decomp
            .edges()
            .filter(|&(e, _)| self.placement.edge(e).host == self.decomp.root())
            .map(|(e, _)| {
                let force = plan
                    .edges
                    .iter()
                    .zip(&plan.all_stripes)
                    .any(|(&(pe, _), &all)| pe == e && all);
                (e, force)
            })
            .collect()
    }

    /// The insert body after the root sweep: walk locks on every non-root
    /// host, the unlocked existence-check chain, then the container writes
    /// in reverse mutation order.
    fn sym_insert_body(
        &self,
        ex: &mut SymExec<'_>,
        plan: &InsertPlan,
        bound: ColumnSet,
        st_full: &SymState,
        walk_site: Site,
    ) {
        let root = self.decomp.root();
        for &e in &plan.edges {
            if self.placement.edge(e).host != root {
                let toks = ex.fallback_tokens(e, st_full, None);
                ex.acquire_batch(toks, LockMode::Exclusive, walk_site, None);
            }
        }
        // The existence check reads containers *unlocked*: every read must
        // be justified by the walk/sweep holds (R1) or by writer exclusion
        // (R2) under the scan-forced all-stripe sweep.
        let mut st = st_full.clone();
        for (i, o) in st.cols.iter_mut().enumerate() {
            if !bound.contains(ColumnId::from_index(i)) {
                *o = None;
            }
        }
        for b in st.bound.iter_mut() {
            *b = false;
        }
        st.bound[root.index()] = true;
        for (i, &(e, kind)) in plan.check.iter().enumerate() {
            let em = self.decomp.edge(e);
            match kind {
                MutTraverse::Lookup => ex.require_read(e, &st, true, Some(i)),
                MutTraverse::Scan => {
                    ex.require_read(e, &st, false, Some(i));
                    st.scan_bind(em.cols, &mut ex.next_scan);
                }
            }
            st.bound[em.dst.index()] = true;
        }
        for (i, &e) in plan.edges.iter().enumerate().rev() {
            ex.require_write(e, st_full, false, Some(i));
        }
    }

    /// The remove body after the root sweep: the locked locate traversal
    /// (per-edge all-stripe or fallback batches, §4.5 target locks for
    /// speculative hops), then the bottom-up unlink — a write per edge and
    /// a whole-instance emptiness read per non-root node. Returns the
    /// survivor state (scan origins bound) for callers that re-insert.
    fn sym_remove_body(
        &self,
        ex: &mut SymExec<'_>,
        plan: &RemovePlan,
        bound: ColumnSet,
        row: u8,
        mut site: Site,
    ) -> SymState {
        let root = self.decomp.root();
        let mut st = SymState::operand(&self.decomp, bound, row);
        for (i, (&(e, kind), &all)) in plan.edges.iter().zip(&plan.all_stripes).enumerate() {
            let em = self.decomp.edge(e);
            let ep = self.placement.edge(e);
            if ep.host != root {
                let toks = if all {
                    ex.all_stripe_tokens(e, &st, Some(i))
                } else {
                    ex.fallback_tokens(e, &st, Some(i))
                };
                ex.acquire_batch(toks, LockMode::Exclusive, site, Some(i));
            }
            match kind {
                MutTraverse::Lookup => {
                    if ep.speculative {
                        // §4.5 protocol: the present path pins the
                        // target-side lock; the read is protocol-justified.
                        if let Some(tok) = ex.target_token(e, &st, Some(i)) {
                            ex.acquire(tok, LockMode::Exclusive, Site::Tolerant, Some(i));
                        }
                    } else {
                        ex.require_read(e, &st, true, Some(i));
                    }
                }
                MutTraverse::Scan => {
                    ex.require_read(e, &st, false, Some(i));
                    st.scan_bind(em.cols, &mut ex.next_scan);
                    // Past the first scan the executor iterates candidate
                    // states; later acquisitions rely on the engine's
                    // try-and-restart rule rather than global order.
                    site = Site::Tolerant;
                }
            }
            st.bound[em.dst.index()] = true;
        }
        // Bottom-up unlink: write every edge's entry out of its container,
        // then decide survivor death by reading the node's containers
        // empty (`is_exhausted`), for every node below the root.
        let mut order: Vec<NodeId> = self.decomp.nodes().map(|(v, _)| v).collect();
        order.sort_by_key(|&v| std::cmp::Reverse(self.decomp.topo_position(v)));
        for v in order {
            for &e in &self.decomp.node(v).outgoing {
                if self.decomp.edge(e).src == v {
                    ex.require_write(e, &st, false, None);
                }
            }
            if v != root {
                for &e in &self.decomp.node(v).outgoing {
                    ex.require_read(e, &st, false, None);
                }
            }
        }
        st
    }

    /// Analyzes `insert r s x` planned for a pattern over `bound`: root
    /// sweep (all stripes when the existence check scans), non-root walk
    /// locks, unlocked check chain, reverse-order container writes.
    ///
    /// # Errors
    ///
    /// Propagates planner failures.
    pub fn analyze_insert(&self, bound: ColumnSet) -> Result<Vec<Diagnostic>, CoreError> {
        let plan = self.planner.plan_insert(bound)?;
        let mut ex = self.exec(format!("insert bound={}", self.render_set(bound)));
        let st_full = self.full_state(0);
        let hosted = self.insert_root_hosted(&plan);
        let sweep = self.root_sweep_tokens(&mut ex, &hosted, &st_full);
        ex.acquire_batch(sweep, LockMode::Exclusive, Site::Sweep, None);
        self.sym_insert_body(&mut ex, &plan, bound, &st_full, Site::Blocking);
        Ok(ex.diags)
    }

    /// Analyzes a two-row `insert_all` batch: one fused root sweep over
    /// both rows' tokens (must be globally sorted), then per-row bodies —
    /// the second row's walk acquisitions are out of the global order by
    /// construction and rely on the engine's try-and-restart rule.
    ///
    /// # Errors
    ///
    /// Propagates planner failures.
    pub fn analyze_insert_all(&self, bound: ColumnSet) -> Result<Vec<Diagnostic>, CoreError> {
        let plan = self.planner.plan_insert_batch(bound)?;
        let mut ex = self.exec(format!("insert_all bound={}", self.render_set(bound)));
        let states = [self.full_state(0), self.full_state(1)];
        let mut sweep = Vec::new();
        for st in &states {
            sweep.extend(self.root_sweep_tokens(&mut ex, &plan.root_hosted, st));
        }
        ex.acquire_batch(sweep, LockMode::Exclusive, Site::Sweep, None);
        for (r, st) in states.iter().enumerate() {
            let site = if r == 0 {
                Site::Blocking
            } else {
                Site::Tolerant
            };
            self.sym_insert_body(&mut ex, &plan.insert, bound, st, site);
        }
        Ok(ex.diags)
    }

    /// Analyzes `remove r s` for a key pattern over `bound`.
    ///
    /// # Errors
    ///
    /// Propagates planner failures.
    pub fn analyze_remove(&self, bound: ColumnSet) -> Result<Vec<Diagnostic>, CoreError> {
        let plan = self.planner.plan_remove(bound)?;
        let mut ex = self.exec(format!("remove bound={}", self.render_set(bound)));
        let st0 = SymState::operand(&self.decomp, bound, 0);
        let hosted = self.remove_root_hosted(&plan);
        let sweep = self.root_sweep_tokens(&mut ex, &hosted, &st0);
        ex.acquire_batch(sweep, LockMode::Exclusive, Site::Sweep, None);
        self.sym_remove_body(&mut ex, &plan, bound, 0, Site::Blocking);
        Ok(ex.diags)
    }

    /// Analyzes a two-key `remove_all` batch: one fused root sweep, then
    /// per-key locate/unlink bodies.
    ///
    /// # Errors
    ///
    /// Propagates planner failures.
    pub fn analyze_remove_all(&self, bound: ColumnSet) -> Result<Vec<Diagnostic>, CoreError> {
        let plan = self.planner.plan_remove_batch(bound)?;
        let mut ex = self.exec(format!("remove_all bound={}", self.render_set(bound)));
        let mut sweep = Vec::new();
        for r in 0..2u8 {
            let st = SymState::operand(&self.decomp, bound, r);
            sweep.extend(self.root_sweep_tokens(&mut ex, &plan.root_hosted, &st));
        }
        ex.acquire_batch(sweep, LockMode::Exclusive, Site::Sweep, None);
        for r in 0..2u8 {
            let site = if r == 0 {
                Site::Blocking
            } else {
                Site::Tolerant
            };
            self.sym_remove_body(&mut ex, &plan.remove, bound, r, site);
        }
        Ok(ex.diags)
    }

    /// Analyzes `update r s t` (`dom s = bound`, `dom t = updated`): the
    /// in-place fast path locks the locate chain with the plan's promoted
    /// modes and rewrites touched entries under them; the general path is
    /// a locked unlink followed by a re-insert of the rewritten tuple in
    /// the same two-phase scope.
    ///
    /// # Errors
    ///
    /// Propagates planner failures.
    pub fn analyze_update(
        &self,
        bound: ColumnSet,
        updated: ColumnSet,
    ) -> Result<Vec<Diagnostic>, CoreError> {
        let plan = self.planner.plan_update(bound, updated)?;
        let mut ex = self.exec(format!(
            "update bound={} set={}",
            self.render_set(bound),
            self.render_set(updated)
        ));
        match plan {
            UpdatePlan::InPlace(p) => self.sym_update_in_place(&mut ex, &p, bound),
            UpdatePlan::General(p) => {
                let hosted = self.remove_root_hosted(&p.remove);
                let st0 = SymState::operand(&self.decomp, bound, 0);
                let sweep = self.root_sweep_tokens(&mut ex, &hosted, &st0);
                ex.acquire_batch(sweep, LockMode::Exclusive, Site::Sweep, None);
                let survivor = self.sym_remove_body(&mut ex, &p.remove, bound, 0, Site::Blocking);
                // Re-insert x = u ⊕ t mid-transaction: the old tuple's
                // origins survive on unchanged columns, the update operand
                // (row 1) overwrites `updated`. Extra acquisitions past the
                // two-phase growth point rely on try-and-restart.
                let mut st_new = survivor;
                for c in p.updated.iter() {
                    st_new.cols[c.index()] = Some(Origin::Operand(1));
                }
                for b in st_new.bound.iter_mut() {
                    *b = true;
                }
                let all = self.decomp.schema().columns();
                let hosted = self.insert_root_hosted(&p.insert);
                let sweep = self.root_sweep_tokens(&mut ex, &hosted, &st_new);
                ex.acquire_batch(sweep, LockMode::Exclusive, Site::Tolerant, None);
                self.sym_insert_body(&mut ex, &p.insert, all, &st_new, Site::Tolerant);
            }
        }
        Ok(ex.diags)
    }

    /// The in-place update model: locate steps with the plan's promoted
    /// lock modes, then the touched-entry rewrites (old entry tombstone +
    /// new entry, each with its MVCC mirror).
    fn sym_update_in_place(&self, ex: &mut SymExec<'_>, p: &InPlaceUpdate, bound: ColumnSet) {
        let mut st = SymState::operand(&self.decomp, bound, 0);
        let mut site = Site::Blocking;
        let mut touched_steps: Vec<(usize, EdgeId)> = Vec::new();
        for (i, step) in p.steps.iter().enumerate() {
            let em = self.decomp.edge(step.edge);
            let ep = self.placement.edge(step.edge);
            // With the seeded-violation switch the promotion pass is
            // undone: each step reverts to its pre-promotion mode.
            let mode = if self.options.suppress_promotion {
                if step.touched {
                    LockMode::Exclusive
                } else {
                    self.placement.read_mode(step.edge)
                }
            } else {
                step.mode
            };
            if ep.speculative {
                // Planner invariant: speculative steps are untouched
                // lookups riding the §4.5 protocol. The executor pins the
                // fallback root stripe first (structural-writer gate for
                // unlocked existence checks), then the target lock.
                let toks = ex.fallback_tokens(step.edge, &st, Some(i));
                ex.acquire_batch(toks, mode, site, Some(i));
                if let Some(tok) = ex.target_token(step.edge, &st, Some(i)) {
                    ex.acquire(tok, mode, Site::Tolerant, Some(i));
                }
                st.bound[em.dst.index()] = true;
                continue;
            }
            let toks = if step.all_stripes {
                ex.all_stripe_tokens(step.edge, &st, Some(i))
            } else {
                ex.fallback_tokens(step.edge, &st, Some(i))
            };
            ex.acquire_batch(toks, mode, site, Some(i));
            match step.kind {
                MutTraverse::Lookup => ex.require_read(step.edge, &st, true, Some(i)),
                MutTraverse::Scan => {
                    ex.require_read(step.edge, &st, false, Some(i));
                    st.scan_bind(em.cols, &mut ex.next_scan);
                    site = Site::Tolerant;
                }
            }
            st.bound[em.dst.index()] = true;
            if step.touched {
                touched_steps.push((i, step.edge));
            }
        }
        // Write phase: each touched edge gets an old-entry tombstone and a
        // new-entry write (stripe may differ when striping columns are
        // updated), both demanding exclusive coverage + an MVCC mirror.
        let mut st_new = st.clone();
        for c in p.updated.iter() {
            st_new.cols[c.index()] = Some(Origin::Operand(1));
        }
        for (i, e) in touched_steps {
            ex.require_write(e, &st, false, Some(i));
            ex.require_write(e, &st_new, false, Some(i));
        }
    }

    /// Analyzes the cross-shard lexicographic discipline: the global
    /// coordinate of a lock is `(shard index, token)`, and a transaction
    /// returning to a lower-indexed shard must demote that shard's engine
    /// to try-only acquisition (see [`crate::shard`]). The model biases the
    /// token's node position by `shard × node_count` and replays an
    /// ascending visit followed by a lower-shard revisit; with
    /// [`AnalyzerOptions::suppress_shard_demotion`] the revisit becomes a
    /// blocking acquisition below the held maximum and must be flagged.
    pub fn analyze_sharded_order(&self) -> Vec<Diagnostic> {
        let mut ex = self.exec("cross-shard transaction".to_owned());
        let span = self.decomp.node_count() as u16;
        let root = self.decomp.root();
        let shard_tok = |ex: &SymExec<'_>, shard: u16| {
            let mut tok = ex.token(root, Vec::new(), AbsStripe::At(0));
            tok.node_pos += shard * span;
            tok
        };
        // Ascending visit: shard 0 then shard 1 — always in order.
        let t0 = shard_tok(&ex, 0);
        let t1 = shard_tok(&ex, 1);
        ex.acquire(t0, LockMode::Exclusive, Site::Blocking, None);
        ex.acquire(t1, LockMode::Exclusive, Site::Blocking, None);
        // Revisit of shard 0 at a second root instance: lexicographically
        // below the held shard-1 token. The layer demotes this to try-only.
        let mut t0b = ex.token(
            root,
            vec![(ColumnId::from_index(0), Origin::Operand(1))],
            AbsStripe::At(0),
        );
        t0b.node_pos = shard_tok(&ex, 0).node_pos;
        let site = if self.options.suppress_shard_demotion {
            Site::Blocking
        } else {
            Site::Tolerant
        };
        ex.acquire(t0b, LockMode::Exclusive, site, None);
        ex.diags
    }

    /// Analyzes the live-migration cutover
    /// ([`crate::ConcurrentRelation::migrate_to`]): the all-stripe
    /// exclusive fence over every root-hosted edge, the frozen-cut
    /// structural walk of the whole tree, the bulk load into the new
    /// (still unpublished) tree, and the root-swap publication.
    ///
    /// The discipline being checked: the fence must cover every read of
    /// the cut walk — directly at the root, through R2 exclusion gates
    /// below it (every root→source path starts with a root-hosted edge
    /// whose full stripe set the fence holds exclusively) — and must
    /// exclude every writer at the publication point, where the swap
    /// makes the bulk-loaded tree reachable. Bulk-load writes themselves
    /// target unpublished instances and are self-covered, exactly like
    /// the executor's fresh-subtree writes.
    ///
    /// With [`AnalyzerOptions::suppress_migration_fence`] the sweep
    /// locks only the first stripe of each root-hosted edge — the
    /// under-locked cutover — and on striped placements the walk's reads
    /// and the publication writes must surface as
    /// [`DiagnosticKind::UncoveredRead`] /
    /// [`DiagnosticKind::UncoveredWrite`].
    pub fn analyze_migration(&self) -> Vec<Diagnostic> {
        let mut ex = self.exec("migration cutover".to_owned());
        let mut st = SymState::operand(&self.decomp, ColumnSet::new(), 0);
        let root = self.decomp.root();
        // Fence: every stripe of every root-hosted edge, exclusively, in
        // one sorted sweep (the executor's `acquire_migration_fence`).
        let mut sweep = Vec::new();
        for (e, _) in self.decomp.edges() {
            if self.placement.edge(e).host == root {
                let mut toks = ex.all_stripe_tokens(e, &st, None);
                if self.options.suppress_migration_fence {
                    toks.truncate(1);
                }
                sweep.extend(toks);
            }
        }
        ex.acquire_batch(sweep, LockMode::Exclusive, Site::Sweep, None);
        // Frozen cut: the structural walk observes every entry of every
        // edge, descending in topological order and scan-binding the
        // columns it reads (so lower hosts' instance keys are bound when
        // their lock sites are checked).
        let mut edges: Vec<EdgeId> = self.decomp.edges().map(|(e, _)| e).collect();
        edges.sort_by_key(|&e| self.decomp.topo_position(self.decomp.edge(e).src));
        for &e in &edges {
            let em = self.decomp.edge(e);
            let (dst, cols) = (em.dst, em.cols);
            ex.require_read(e, &st, false, None);
            st.scan_bind(cols, &mut ex.next_scan);
            st.bound[dst.index()] = true;
        }
        // Bulk load: writes into the new tree's still-unpublished
        // instances are self-covered (`fresh`), like the executor's
        // fresh-subtree writes — but each still owes its MVCC mirror.
        for &e in &edges {
            ex.require_write(e, &st, true, None);
        }
        // Publication: the swap makes the loaded tree reachable, which
        // carries the same writer-exclusion obligation as mutating every
        // root-hosted edge in place.
        for &e in &edges {
            if self.placement.edge(e).host == root {
                ex.require_write(e, &st, false, None);
            }
        }
        ex.diags
    }

    /// Runs the whole battery: the structural placement checks, every
    /// operation shape over every bound-column subset (and every disjoint
    /// updated subset for updates), and the cross-shard order model.
    /// Planner rejections (`NoValidPlan`, non-key patterns) are skipped —
    /// the executor can never run those shapes. Intended for library-sized
    /// schemas (the subset enumeration is exponential in column count).
    pub fn analyze_all(&self) -> Vec<Diagnostic> {
        let mut out = self.check_placement();
        let full = self.decomp.schema().columns();
        let cols: Vec<ColumnId> = full.iter().collect();
        let n = cols.len();
        let mut subsets = Vec::new();
        for mask in 0u32..(1u32 << n) {
            let mut s = ColumnSet::new();
            for (i, &c) in cols.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    s.insert(c);
                }
            }
            subsets.push(s);
        }
        for &bound in &subsets {
            if let Ok(d) = self.analyze_query(bound, full) {
                out.extend(d);
            }
            for &rc in &cols {
                if bound.contains(rc) {
                    continue;
                }
                if let Ok(d) = self.analyze_query_range(bound, rc, full) {
                    out.extend(d);
                }
            }
            if let Ok(d) = self.analyze_exists(bound) {
                out.extend(d);
            }
            if let Ok(d) = self.analyze_insert(bound) {
                out.extend(d);
            }
            if let Ok(d) = self.analyze_insert_all(bound) {
                out.extend(d);
            }
            if let Ok(d) = self.analyze_remove(bound) {
                out.extend(d);
            }
            if let Ok(d) = self.analyze_remove_all(bound) {
                out.extend(d);
            }
            for &updated in &subsets {
                if updated.is_empty() || !updated.is_disjoint(bound) {
                    continue;
                }
                if let Ok(d) = self.analyze_update(bound, updated) {
                    out.extend(d);
                }
            }
        }
        out.extend(self.analyze_sharded_order());
        out.extend(self.analyze_migration());
        out
    }
}
