//! The concurrent decomposition language (§4.1).
//!
//! A decomposition is a rooted DAG describing how to represent a relation as
//! a combination of container data structures. Each node `v : A ▷ B` pairs
//! the columns `A` fixed by paths from the root with the residual columns
//! `B` represented by the subgraph below `v`; each edge carries a set of
//! columns and a container choice.
//!
//! [`Decomposition::builder`] checks *adequacy* (the conditions of Hawkins
//! et al. \[12\], under which every relation satisfying the specification is
//! representable):
//!
//! * the graph is a DAG, rooted, with every node reachable from the root;
//! * for every edge `u → v`: `A_v = A_u ∪ cols(uv)` (consistent across all
//!   of `v`'s incoming edges) and `cols(uv)` is disjoint from `A_u`;
//! * for every edge `u → v`: `B_u = cols(uv) ∪ B_v` — every branch below a
//!   node covers the node's full residual, so any maximal path from the
//!   root binds every column;
//! * sinks have empty residuals (their `A` is the full column set);
//! * a [`ContainerKind::Singleton`] edge is only legal where the functional
//!   dependencies guarantee at most one entry (`A_u → cols(uv)`).

use std::fmt;
use std::sync::Arc;

use relc_containers::ContainerKind;
use relc_spec::{ColumnSet, RelationSchema};

use crate::error::CoreError;

/// Identifier of a decomposition node (index into [`Decomposition::nodes`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u16);

impl NodeId {
    /// Dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a decomposition edge (index into [`Decomposition::edges`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub(crate) u16);

impl EdgeId {
    /// Dense index of this edge.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A decomposition node `v : A ▷ B`.
#[derive(Debug, Clone)]
pub struct NodeMeta {
    /// Human-readable name (e.g. `ρ`, `x`).
    pub name: String,
    /// `A`: the columns whose valuation identifies an instance of this node.
    pub key_cols: ColumnSet,
    /// `B`: the residual columns represented below this node.
    pub residual: ColumnSet,
    /// Outgoing edges, in insertion order.
    pub outgoing: Vec<EdgeId>,
    /// Incoming edges, in insertion order.
    pub incoming: Vec<EdgeId>,
}

/// A decomposition edge `u → v` with its column set and container choice.
#[derive(Debug, Clone)]
pub struct EdgeMeta {
    /// Source node.
    pub src: NodeId,
    /// Target node.
    pub dst: NodeId,
    /// The columns bound by traversing this edge (the container key).
    pub cols: ColumnSet,
    /// The container implementing this edge.
    pub container: ContainerKind,
    /// Whether the FDs guarantee at most one entry per container instance.
    pub singleton: bool,
}

/// A validated decomposition: the static description of the heap.
#[derive(Debug, Clone)]
pub struct Decomposition {
    schema: Arc<RelationSchema>,
    nodes: Vec<NodeMeta>,
    edges: Vec<EdgeMeta>,
    root: NodeId,
    /// `topo_pos[node] = position` in a fixed topological order; the first
    /// component of the global lock order (§5.1).
    topo_pos: Vec<u16>,
    /// `dominators[node]` = set of nodes (as a bitmask) dominating `node`
    /// w.r.t. the root, including itself.
    dominators: Vec<u64>,
}

impl Decomposition {
    /// Starts building a decomposition for `schema`. The root node `ρ` is
    /// created implicitly.
    pub fn builder(schema: Arc<RelationSchema>) -> DecompositionBuilder {
        DecompositionBuilder::new(schema)
    }

    /// The relation schema this decomposition represents.
    pub fn schema(&self) -> &Arc<RelationSchema> {
        &self.schema
    }

    /// The root node `ρ`.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// All nodes.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &NodeMeta)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u16), n))
    }

    /// All edges.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &EdgeMeta)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId(i as u16), e))
    }

    /// Node metadata.
    pub fn node(&self, id: NodeId) -> &NodeMeta {
        &self.nodes[id.index()]
    }

    /// Edge metadata.
    pub fn edge(&self, id: EdgeId) -> &EdgeMeta {
        &self.edges[id.index()]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The position of `node` in the fixed topological order (the first
    /// component of the lock order, §5.1).
    pub fn topo_position(&self, node: NodeId) -> u16 {
        self.topo_pos[node.index()]
    }

    /// Whether `a` dominates `b`: every path from the root to `b` passes
    /// through `a`. Every node dominates itself.
    pub fn dominates(&self, a: NodeId, b: NodeId) -> bool {
        self.dominators[b.index()] & (1u64 << a.0) != 0
    }

    /// Finds a node by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(|i| NodeId(i as u16))
    }

    /// Finds the edge between two named nodes.
    pub fn edge_between(&self, src: &str, dst: &str) -> Option<EdgeId> {
        let s = self.node_by_name(src)?;
        let d = self.node_by_name(dst)?;
        self.edges
            .iter()
            .position(|e| e.src == s && e.dst == d)
            .map(|i| EdgeId(i as u16))
    }

    /// All simple paths (edge sequences) from `from` to `to`.
    pub fn paths_between(&self, from: NodeId, to: NodeId) -> Vec<Vec<EdgeId>> {
        let mut out = Vec::new();
        let mut stack = Vec::new();
        self.paths_rec(from, to, &mut stack, &mut out);
        out
    }

    fn paths_rec(
        &self,
        cur: NodeId,
        to: NodeId,
        stack: &mut Vec<EdgeId>,
        out: &mut Vec<Vec<EdgeId>>,
    ) {
        if cur == to {
            out.push(stack.clone());
            return;
        }
        for &e in &self.nodes[cur.index()].outgoing {
            stack.push(e);
            self.paths_rec(self.edges[e.index()].dst, to, stack, out);
            stack.pop();
        }
    }

    /// Renders the decomposition in a compact text form, e.g.
    /// `ρ -{src}-> u [TreeMap]; u -{dst}-> v [TreeMap]; ...`.
    pub fn describe(&self) -> String {
        let cat = self.schema.catalog();
        let mut parts = Vec::new();
        for e in &self.edges {
            parts.push(format!(
                "{} -{}-> {} [{}{}]",
                self.nodes[e.src.index()].name,
                cat.render_set(e.cols),
                self.nodes[e.dst.index()].name,
                e.container,
                if e.singleton { ", singleton" } else { "" },
            ));
        }
        parts.join("; ")
    }
}

impl fmt::Display for Decomposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// Builder for [`Decomposition`]; see [`Decomposition::builder`].
#[derive(Debug)]
pub struct DecompositionBuilder {
    schema: Arc<RelationSchema>,
    names: Vec<String>,
    edges: Vec<(usize, usize, ColumnSet, ContainerKind)>,
}

impl DecompositionBuilder {
    fn new(schema: Arc<RelationSchema>) -> Self {
        DecompositionBuilder {
            schema,
            names: vec!["ρ".to_owned()],
            edges: Vec::new(),
        }
    }

    /// The implicit root node `ρ`.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Adds a node.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names.
    pub fn node(&mut self, name: &str) -> NodeId {
        assert!(
            !self.names.iter().any(|n| n == name),
            "duplicate node name {name}"
        );
        self.names.push(name.to_owned());
        NodeId((self.names.len() - 1) as u16)
    }

    /// Adds an edge `src → dst` binding `cols` (by name), implemented by
    /// `container`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Spec`] for unknown column names.
    pub fn edge(
        &mut self,
        src: NodeId,
        dst: NodeId,
        cols: &[&str],
        container: ContainerKind,
    ) -> Result<&mut Self, CoreError> {
        let cols = self.schema.column_set(cols)?;
        self.edges.push((src.index(), dst.index(), cols, container));
        Ok(self)
    }

    /// Validates adequacy and produces the decomposition.
    ///
    /// # Errors
    ///
    /// See [`CoreError::MalformedDecomposition`] and
    /// [`CoreError::Inadequate`].
    pub fn build(&self) -> Result<Arc<Decomposition>, CoreError> {
        let n = self.names.len();
        if n > 64 {
            return Err(CoreError::MalformedDecomposition(
                "more than 64 nodes".into(),
            ));
        }
        let mut nodes: Vec<NodeMeta> = self
            .names
            .iter()
            .map(|name| NodeMeta {
                name: name.clone(),
                key_cols: ColumnSet::EMPTY,
                residual: ColumnSet::EMPTY,
                outgoing: Vec::new(),
                incoming: Vec::new(),
            })
            .collect();
        let mut edges: Vec<EdgeMeta> = Vec::with_capacity(self.edges.len());
        for (i, (src, dst, cols, container)) in self.edges.iter().enumerate() {
            if *src >= n || *dst >= n {
                return Err(CoreError::MalformedDecomposition(format!(
                    "edge {i} references unknown node"
                )));
            }
            if cols.is_empty() {
                return Err(CoreError::MalformedDecomposition(format!(
                    "edge {} -> {} has no columns",
                    self.names[*src], self.names[*dst]
                )));
            }
            if edges
                .iter()
                .any(|e: &EdgeMeta| e.src.index() == *src && e.dst.index() == *dst)
            {
                return Err(CoreError::MalformedDecomposition(format!(
                    "duplicate edge {} -> {}",
                    self.names[*src], self.names[*dst]
                )));
            }
            let id = EdgeId(i as u16);
            nodes[*src].outgoing.push(id);
            nodes[*dst].incoming.push(id);
            edges.push(EdgeMeta {
                src: NodeId(*src as u16),
                dst: NodeId(*dst as u16),
                cols: *cols,
                container: *container,
                singleton: false,
            });
        }
        if !nodes[0].incoming.is_empty() {
            return Err(CoreError::MalformedDecomposition(
                "root has incoming edges".into(),
            ));
        }

        // Topological sort (Kahn); also detects cycles.
        let mut indeg: Vec<usize> = nodes.iter().map(|v| v.incoming.len()).collect();
        let mut topo: Vec<NodeId> = Vec::with_capacity(n);
        let mut queue: Vec<NodeId> = vec![NodeId(0)];
        // Non-root nodes with zero in-degree are unreachable; caught below.
        while let Some(v) = queue.pop() {
            topo.push(v);
            for &e in &nodes[v.index()].outgoing {
                let d = edges[e.index()].dst;
                indeg[d.index()] -= 1;
                if indeg[d.index()] == 0 {
                    queue.push(d);
                }
            }
        }
        if topo.len() != n {
            return Err(CoreError::MalformedDecomposition(
                "graph has a cycle or a node unreachable from the root".into(),
            ));
        }
        let mut topo_pos = vec![0u16; n];
        for (pos, v) in topo.iter().enumerate() {
            topo_pos[v.index()] = pos as u16;
        }

        // Key columns: A_v = A_u ∪ cols(uv), consistent over incoming edges,
        // and cols(uv) disjoint from A_u. Process in topological order.
        for &v in &topo {
            if v.index() == 0 {
                continue;
            }
            let mut acc: Option<ColumnSet> = None;
            for &e in &nodes[v.index()].incoming.clone() {
                let em = &edges[e.index()];
                let a_u = nodes[em.src.index()].key_cols;
                if !a_u.is_disjoint(em.cols) {
                    return Err(CoreError::Inadequate(format!(
                        "edge {} -> {} rebinds columns already fixed at its source",
                        nodes[em.src.index()].name,
                        nodes[v.index()].name
                    )));
                }
                let a_v = a_u.union(em.cols);
                match acc {
                    None => acc = Some(a_v),
                    Some(prev) if prev == a_v => {}
                    Some(_) => {
                        return Err(CoreError::Inadequate(format!(
                            "node {} has inconsistent key columns across incoming edges",
                            nodes[v.index()].name
                        )))
                    }
                }
            }
            nodes[v.index()].key_cols = acc.expect("non-root reachable node has incoming edges");
        }

        // Residuals: B_v computed bottom-up; every outgoing edge must cover
        // the full residual: B_u = cols(uv) ∪ B_v for all uv.
        let all = self.schema.columns();
        for &v in topo.iter().rev() {
            let vm = &nodes[v.index()];
            if vm.outgoing.is_empty() {
                if vm.key_cols != all {
                    return Err(CoreError::Inadequate(format!(
                        "sink node {} binds {} but the relation has columns {}",
                        vm.name,
                        self.schema.catalog().render_set(vm.key_cols),
                        self.schema.catalog().render_set(all)
                    )));
                }
                continue; // residual stays empty
            }
            let mut acc: Option<ColumnSet> = None;
            for &e in &vm.outgoing {
                let em = &edges[e.index()];
                let b = em.cols.union(nodes[em.dst.index()].residual);
                match acc {
                    None => acc = Some(b),
                    Some(prev) if prev == b => {}
                    Some(prev) => {
                        return Err(CoreError::Inadequate(format!(
                            "node {} has branches covering different residuals ({} vs {})",
                            nodes[v.index()].name,
                            self.schema.catalog().render_set(prev),
                            self.schema.catalog().render_set(b)
                        )))
                    }
                }
            }
            let residual = acc.expect("checked outgoing non-empty");
            let v_idx = v.index();
            if !nodes[v_idx].key_cols.is_disjoint(residual) {
                return Err(CoreError::Inadequate(format!(
                    "node {} residual overlaps its key columns",
                    nodes[v_idx].name
                )));
            }
            nodes[v_idx].residual = residual;
        }
        if nodes[0].residual != all {
            return Err(CoreError::Inadequate(format!(
                "root represents {} but the relation has columns {}",
                self.schema.catalog().render_set(nodes[0].residual),
                self.schema.catalog().render_set(all)
            )));
        }

        // Singleton analysis and container legality.
        for e in &mut edges {
            let a_u = nodes[e.src.index()].key_cols;
            e.singleton = self.schema.fds().determines(a_u, e.cols);
            if e.container == ContainerKind::Singleton && !e.singleton {
                return Err(CoreError::IncompatibleContainer(format!(
                    "edge {} -> {} uses a Singleton container but the FDs allow \
                     multiple entries",
                    nodes[e.src.index()].name,
                    nodes[e.dst.index()].name
                )));
            }
        }

        // Dominators (iterative dataflow over the DAG in topo order).
        let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        let mut dom = vec![full; n];
        dom[0] = 1; // root dominated only by itself
        let mut changed = true;
        while changed {
            changed = false;
            for &v in &topo {
                if v.index() == 0 {
                    continue;
                }
                let mut acc = full;
                for &e in &nodes[v.index()].incoming {
                    acc &= dom[edges[e.index()].src.index()];
                }
                acc |= 1u64 << v.0;
                if acc != dom[v.index()] {
                    dom[v.index()] = acc;
                    changed = true;
                }
            }
        }

        Ok(Arc::new(Decomposition {
            schema: Arc::clone(&self.schema),
            nodes,
            edges,
            root: NodeId(0),
            topo_pos,
            dominators: dom,
        }))
    }
}

/// The paper's ready-made decompositions.
pub mod library {
    use super::*;
    use relc_spec::library as schemas;

    /// Fig. 3(a): the "stick" — a chain `ρ -src→ u -dst→ v -weight→ w`.
    ///
    /// `map1` implements the first level, `map2` the second; the weight edge
    /// is a singleton.
    pub fn stick(map1: ContainerKind, map2: ContainerKind) -> Arc<Decomposition> {
        let schema = schemas::graph_schema();
        let mut b = Decomposition::builder(schema);
        let root = b.root();
        let u = b.node("u");
        let v = b.node("v");
        let w = b.node("w");
        b.edge(root, u, &["src"], map1).expect("valid columns");
        b.edge(u, v, &["dst"], map2).expect("valid columns");
        b.edge(v, w, &["weight"], ContainerKind::Singleton)
            .expect("valid columns");
        b.build().expect("stick is adequate")
    }

    /// Fig. 3(b): the "split" — independent src-first and dst-first chains.
    ///
    /// Nodes: `ρ`, `u`(src), `w`(src,dst), `x`(leaf), `v`(dst), `y`(dst,src),
    /// `z`(leaf).
    pub fn split(top: ContainerKind, second: ContainerKind) -> Arc<Decomposition> {
        let schema = schemas::graph_schema();
        let mut b = Decomposition::builder(schema);
        let root = b.root();
        let u = b.node("u");
        let w = b.node("w");
        let x = b.node("x");
        let v = b.node("v");
        let y = b.node("y");
        let z = b.node("z");
        b.edge(root, u, &["src"], top).expect("valid columns");
        b.edge(u, w, &["dst"], second).expect("valid columns");
        b.edge(w, x, &["weight"], ContainerKind::Singleton)
            .expect("valid columns");
        b.edge(root, v, &["dst"], top).expect("valid columns");
        b.edge(v, y, &["src"], second).expect("valid columns");
        b.edge(y, z, &["weight"], ContainerKind::Singleton)
            .expect("valid columns");
        b.build().expect("split is adequate")
    }

    /// Fig. 3(c): the "diamond" — src-first and dst-first indexes sharing
    /// the `(src, dst)` node `w`, which holds the weight.
    pub fn diamond(top: ContainerKind, second: ContainerKind) -> Arc<Decomposition> {
        let schema = schemas::graph_schema();
        let mut b = Decomposition::builder(schema);
        let root = b.root();
        let x = b.node("x");
        let y = b.node("y");
        let w = b.node("w");
        let z = b.node("z");
        b.edge(root, x, &["src"], top).expect("valid columns");
        b.edge(root, y, &["dst"], top).expect("valid columns");
        b.edge(x, w, &["dst"], second).expect("valid columns");
        b.edge(y, w, &["src"], second).expect("valid columns");
        b.edge(w, z, &["weight"], ContainerKind::Singleton)
            .expect("valid columns");
        b.build().expect("diamond is adequate")
    }

    /// Fig. 2(a): the filesystem directory-tree ("dcache") decomposition:
    /// a parent→name tree plus a global (parent, name) hash index sharing
    /// node `y`.
    pub fn dcache() -> Arc<Decomposition> {
        let schema = schemas::dcache_schema();
        let mut b = Decomposition::builder(schema);
        let root = b.root();
        let x = b.node("x");
        let y = b.node("y");
        let z = b.node("z");
        b.edge(root, x, &["parent"], ContainerKind::TreeMap)
            .expect("valid columns");
        b.edge(x, y, &["name"], ContainerKind::TreeMap)
            .expect("valid columns");
        b.edge(
            root,
            y,
            &["parent", "name"],
            ContainerKind::ConcurrentHashMap,
        )
        .expect("valid columns");
        b.edge(y, z, &["child"], ContainerKind::Singleton)
            .expect("valid columns");
        b.build().expect("dcache is adequate")
    }

    /// A two-level key-value map `ρ -key→ a -value→ b` over the kv schema.
    pub fn kv(map: ContainerKind) -> Arc<Decomposition> {
        let schema = schemas::kv_schema();
        let mut b = Decomposition::builder(schema);
        let root = b.root();
        let a = b.node("a");
        let bb = b.node("b");
        b.edge(root, a, &["key"], map).expect("valid columns");
        b.edge(a, bb, &["value"], ContainerKind::Singleton)
            .expect("valid columns");
        b.build().expect("kv is adequate")
    }
}

#[cfg(test)]
mod tests {
    use super::library::*;
    use super::*;
    use relc_spec::library as schemas;

    #[test]
    fn stick_types_match_paper() {
        let d = stick(ContainerKind::TreeMap, ContainerKind::TreeMap);
        assert_eq!(d.node_count(), 4);
        assert_eq!(d.edge_count(), 3);
        let u = d.node_by_name("u").unwrap();
        let v = d.node_by_name("v").unwrap();
        let w = d.node_by_name("w").unwrap();
        let s = d.schema();
        assert_eq!(d.node(u).key_cols, s.column_set(&["src"]).unwrap());
        assert_eq!(
            d.node(u).residual,
            s.column_set(&["dst", "weight"]).unwrap()
        );
        assert_eq!(d.node(v).key_cols, s.column_set(&["src", "dst"]).unwrap());
        assert_eq!(d.node(w).key_cols, s.columns());
        assert!(d.node(w).residual.is_empty());
        // weight edge is a singleton by the FD src,dst → weight
        let vw = d.edge_between("v", "w").unwrap();
        assert!(d.edge(vw).singleton);
        let uv = d.edge_between("u", "v").unwrap();
        assert!(!d.edge(uv).singleton);
    }

    #[test]
    fn split_has_independent_branches() {
        let d = split(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
        assert_eq!(d.node_count(), 7);
        assert_eq!(d.edge_count(), 6);
        let y = d.node_by_name("y").unwrap();
        let s = d.schema();
        assert_eq!(d.node(y).key_cols, s.column_set(&["src", "dst"]).unwrap());
        // Root residual covers everything through both branches.
        assert_eq!(d.node(d.root()).residual, s.columns());
    }

    #[test]
    fn diamond_shares_w() {
        let d = diamond(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
        let w = d.node_by_name("w").unwrap();
        assert_eq!(d.node(w).incoming.len(), 2);
        // ρ and w dominate w; x and y do not.
        assert!(d.dominates(d.root(), w));
        assert!(d.dominates(w, w));
        assert!(!d.dominates(d.node_by_name("x").unwrap(), w));
        assert!(!d.dominates(d.node_by_name("y").unwrap(), w));
        // Two paths root → w.
        assert_eq!(d.paths_between(d.root(), w).len(), 2);
    }

    #[test]
    fn dcache_matches_figure2() {
        let d = dcache();
        assert_eq!(d.node_count(), 4);
        assert_eq!(d.edge_count(), 4);
        let y = d.node_by_name("y").unwrap();
        assert_eq!(
            d.node(y).incoming.len(),
            2,
            "y is shared (tree + hash index)"
        );
        let s = d.schema();
        assert_eq!(
            d.node(y).key_cols,
            s.column_set(&["parent", "name"]).unwrap()
        );
        let yz = d.edge_between("y", "z").unwrap();
        assert!(
            d.edge(yz).singleton,
            "parent,name → child makes yz a singleton"
        );
        assert!(d.describe().contains("TreeMap"));
    }

    #[test]
    fn topo_order_is_consistent() {
        let d = diamond(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
        for (_, e) in d.edges() {
            assert!(
                d.topo_position(e.src) < d.topo_position(e.dst),
                "edges go forward in topo order"
            );
        }
        assert_eq!(d.topo_position(d.root()), 0);
    }

    #[test]
    fn rejects_cycle() {
        let schema = schemas::graph_schema();
        let mut b = Decomposition::builder(schema);
        let root = b.root();
        let a = b.node("a");
        let c = b.node("c");
        b.edge(root, a, &["src"], ContainerKind::HashMap).unwrap();
        b.edge(a, c, &["dst"], ContainerKind::HashMap).unwrap();
        b.edge(c, a, &["weight"], ContainerKind::HashMap).unwrap();
        assert!(matches!(
            b.build(),
            Err(CoreError::MalformedDecomposition(_))
        ));
    }

    #[test]
    fn rejects_unreachable_node() {
        let schema = schemas::graph_schema();
        let mut b = Decomposition::builder(schema);
        let root = b.root();
        let a = b.node("a");
        let _orphan = b.node("orphan");
        b.edge(root, a, &["src"], ContainerKind::HashMap).unwrap();
        assert!(b.build().is_err());
    }

    #[test]
    fn rejects_incomplete_sink() {
        // Chain binding only src, dst — sink misses weight.
        let schema = schemas::graph_schema();
        let mut b = Decomposition::builder(schema);
        let root = b.root();
        let a = b.node("a");
        let c = b.node("c");
        b.edge(root, a, &["src"], ContainerKind::HashMap).unwrap();
        b.edge(a, c, &["dst"], ContainerKind::HashMap).unwrap();
        match b.build() {
            Err(CoreError::Inadequate(msg)) => assert!(msg.contains("sink"), "{msg}"),
            other => panic!("expected Inadequate, got {other:?}"),
        }
    }

    #[test]
    fn rejects_inconsistent_shared_node_keys() {
        // w reached with keys {src,dst} on one path, {src} on the other.
        let schema = schemas::graph_schema();
        let mut b = Decomposition::builder(schema);
        let root = b.root();
        let x = b.node("x");
        let w = b.node("w");
        b.edge(root, x, &["src"], ContainerKind::HashMap).unwrap();
        b.edge(x, w, &["dst"], ContainerKind::HashMap).unwrap();
        b.edge(root, w, &["src"], ContainerKind::HashMap).unwrap();
        assert!(matches!(b.build(), Err(CoreError::Inadequate(_))));
    }

    #[test]
    fn rejects_branches_with_unequal_residuals() {
        let schema = schemas::graph_schema();
        let mut b = Decomposition::builder(schema);
        let root = b.root();
        // Branch 1: full chain; branch 2: root→leaf directly missing weight
        let u = b.node("u");
        let v = b.node("v");
        let w = b.node("w");
        let q = b.node("q");
        b.edge(root, u, &["src"], ContainerKind::HashMap).unwrap();
        b.edge(u, v, &["dst"], ContainerKind::HashMap).unwrap();
        b.edge(v, w, &["weight"], ContainerKind::Singleton).unwrap();
        b.edge(root, q, &["src", "dst"], ContainerKind::HashMap)
            .unwrap();
        // q is a sink binding only src,dst → inadequate.
        assert!(matches!(b.build(), Err(CoreError::Inadequate(_))));
    }

    #[test]
    fn rejects_singleton_on_multi_entry_edge() {
        let schema = schemas::graph_schema();
        let mut b = Decomposition::builder(schema);
        let root = b.root();
        let u = b.node("u");
        let v = b.node("v");
        let w = b.node("w");
        b.edge(root, u, &["src"], ContainerKind::Singleton).unwrap();
        b.edge(u, v, &["dst"], ContainerKind::HashMap).unwrap();
        b.edge(v, w, &["weight"], ContainerKind::Singleton).unwrap();
        assert!(matches!(
            b.build(),
            Err(CoreError::IncompatibleContainer(_))
        ));
    }

    #[test]
    fn rejects_duplicate_edge_and_rebinding() {
        let schema = schemas::graph_schema();
        let mut b = Decomposition::builder(schema);
        let root = b.root();
        let u = b.node("u");
        b.edge(root, u, &["src"], ContainerKind::HashMap).unwrap();
        b.edge(root, u, &["src"], ContainerKind::TreeMap).unwrap();
        assert!(matches!(
            b.build(),
            Err(CoreError::MalformedDecomposition(_))
        ));

        let schema = schemas::graph_schema();
        let mut b = Decomposition::builder(schema);
        let root = b.root();
        let u = b.node("u");
        let v = b.node("v");
        b.edge(root, u, &["src"], ContainerKind::HashMap).unwrap();
        // rebinding src on the next edge
        b.edge(u, v, &["src"], ContainerKind::HashMap).unwrap();
        assert!(matches!(b.build(), Err(CoreError::Inadequate(_))));
    }

    #[test]
    fn unknown_column_surfaces_spec_error() {
        let schema = schemas::graph_schema();
        let mut b = Decomposition::builder(schema);
        let root = b.root();
        let u = b.node("u");
        assert!(matches!(
            b.edge(root, u, &["nope"], ContainerKind::HashMap),
            Err(CoreError::Spec(_))
        ));
    }

    #[test]
    fn kv_decomposition() {
        let d = kv(ContainerKind::ConcurrentHashMap);
        assert_eq!(d.node_count(), 3);
        let a = d.node_by_name("a").unwrap();
        assert_eq!(d.node(a).key_cols, d.schema().column_set(&["key"]).unwrap());
        let ab = d.edge_between("a", "b").unwrap();
        assert!(d.edge(ab).singleton);
    }
}
