//! Decomposition instances: the run-time counterpart of a decomposition
//! (§4.1).
//!
//! Each node `v : A ▷ B` of a decomposition has a set of run-time instances
//! `v_t`, one per valuation `t` of `A`; each instance owns one container per
//! outgoing edge and the physical lock stripes assigned to the node by the
//! lock placement. Instances are shared via [`Arc`] — a node with several
//! incoming edges (e.g. the diamond's `w`) is reachable from several
//! containers but is one object, exactly as in Fig. 2(b).

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use relc_containers::{ConcurrentSkipListMap, Container, VersionCell};
use relc_locks::PhysicalLock;
use relc_spec::Tuple;

use crate::decomp::{Decomposition, EdgeId, NodeId};
use crate::placement::LockPlacement;

/// Shared handle to a node instance.
pub type NodeRef = Arc<NodeInstance>;

/// The shadow version index of one outgoing edge: entry key → that
/// entry's MVCC version chain. Kept parallel to the edge's main
/// container and mirrored by every locked write, so snapshot readers
/// traverse only this lock-free structure and never touch containers
/// that are unsafe under concurrent writes.
pub type VersionIndex = ConcurrentSkipListMap<Tuple, Arc<VersionCell<NodeRef>>>;

/// A run-time instance `v_t` of decomposition node `v`.
pub struct NodeInstance {
    node: NodeId,
    key: Tuple,
    locks: Box<[Arc<PhysicalLock>]>,
    /// One container per outgoing edge, parallel to `node.outgoing`.
    containers: Box<[Box<dyn Container<Tuple, NodeRef>>]>,
    /// One shadow version index per outgoing edge, parallel to
    /// `containers`.
    versions: Box<[VersionIndex]>,
}

impl NodeInstance {
    /// Creates a fresh instance of `node` keyed by `key` (a valuation of the
    /// node's `A` columns), with empty containers and `stripe_count` locks.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `key` is not a valuation of the node's key columns.
    pub fn new(
        decomp: &Decomposition,
        placement: &LockPlacement,
        node: NodeId,
        key: Tuple,
    ) -> NodeRef {
        let meta = decomp.node(node);
        debug_assert!(
            key.is_valuation_for(meta.key_cols),
            "instance key {key:?} must be a valuation of node {}'s key columns",
            meta.name
        );
        let locks = (0..placement.stripe_count(node))
            .map(|_| Arc::new(PhysicalLock::new()))
            .collect();
        let containers = meta
            .outgoing
            .iter()
            .map(|&e| decomp.edge(e).container.instantiate::<Tuple, NodeRef>())
            .collect();
        let versions = meta.outgoing.iter().map(|_| VersionIndex::new()).collect();
        Arc::new(NodeInstance {
            node,
            key,
            locks,
            containers,
            versions,
        })
    }

    /// The decomposition node this is an instance of.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The instance key (valuation of the node's `A` columns).
    pub fn key(&self) -> &Tuple {
        &self.key
    }

    /// The physical lock for stripe `stripe`.
    ///
    /// # Panics
    ///
    /// Panics if `stripe` exceeds the placement's stripe count for the node.
    pub fn lock(&self, stripe: u32) -> &Arc<PhysicalLock> {
        &self.locks[stripe as usize]
    }

    /// The container implementing outgoing edge `edge`.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is not an outgoing edge of this node.
    pub fn container(
        &self,
        decomp: &Decomposition,
        edge: EdgeId,
    ) -> &dyn Container<Tuple, NodeRef> {
        let pos = decomp
            .node(self.node)
            .outgoing
            .iter()
            .position(|&e| e == edge)
            .expect("edge must leave this node");
        &*self.containers[pos]
    }

    /// The shadow version index of outgoing edge `edge`.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is not an outgoing edge of this node.
    pub fn versions(&self, decomp: &Decomposition, edge: EdgeId) -> &VersionIndex {
        let pos = decomp
            .node(self.node)
            .outgoing
            .iter()
            .position(|&e| e == edge)
            .expect("edge must leave this node");
        &self.versions[pos]
    }

    /// Whether every container of this instance is empty (the instance
    /// represents no residual tuples and should be unlinked).
    pub fn is_exhausted(&self) -> bool {
        self.containers.iter().all(|c| c.is_empty())
    }
}

impl fmt::Debug for NodeInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NodeInstance")
            .field("node", &self.node)
            .field("key", &self.key)
            .field("stripes", &self.locks.len())
            .finish()
    }
}

/// Walks one maximal chain of `decomp` from `root`, returning the set of
/// full tuples it represents. `chain` is a root-originating edge path ending
/// at a sink.
///
/// Not synchronized: callers must be quiescent (tests, assertions).
fn tuples_along_chain(decomp: &Decomposition, root: &NodeRef, chain: &[EdgeId]) -> BTreeSet<Tuple> {
    let mut states: Vec<(Tuple, NodeRef)> = vec![(Tuple::empty(), Arc::clone(root))];
    for &e in chain {
        let mut next = Vec::new();
        for (t, inst) in &states {
            inst.container(decomp, e)
                .scan(&mut |k: &Tuple, child: &NodeRef| {
                    let merged = t.union(k).expect("container keys extend the path tuple");
                    next.push((merged, Arc::clone(child)));
                    std::ops::ControlFlow::Continue(())
                });
        }
        states = next;
    }
    states.into_iter().map(|(t, _)| t).collect()
}

/// All maximal chains (root-to-sink edge paths) of a decomposition.
pub fn maximal_chains(decomp: &Decomposition) -> Vec<Vec<EdgeId>> {
    let mut out = Vec::new();
    let mut stack = Vec::new();
    fn rec(
        decomp: &Decomposition,
        node: NodeId,
        stack: &mut Vec<EdgeId>,
        out: &mut Vec<Vec<EdgeId>>,
    ) {
        let meta = decomp.node(node);
        if meta.outgoing.is_empty() {
            out.push(stack.clone());
            return;
        }
        for &e in &meta.outgoing {
            stack.push(e);
            rec(decomp, decomp.edge(e).dst, stack, out);
            stack.pop();
        }
    }
    rec(decomp, decomp.root(), &mut stack, &mut out);
    out
}

/// The abstraction function α: the relation represented by a decomposition
/// instance (§4.1), computed from the first maximal chain.
///
/// Not synchronized: callers must be quiescent.
pub fn abstract_relation(decomp: &Decomposition, root: &NodeRef) -> BTreeSet<Tuple> {
    let chains = maximal_chains(decomp);
    tuples_along_chain(decomp, root, &chains[0])
}

/// Full well-formedness check of a quiescent instance:
///
/// * every maximal chain represents the same tuple set (branch agreement);
/// * instances of shared nodes are physically shared (`Arc::ptr_eq`);
/// * no instance is exhausted (empty substructures must be unlinked);
/// * every instance key matches its position in the graph.
///
/// Returns the represented relation on success.
///
/// # Errors
///
/// A human-readable description of the first violated invariant.
pub fn verify_instance(decomp: &Decomposition, root: &NodeRef) -> Result<BTreeSet<Tuple>, String> {
    let chains = maximal_chains(decomp);
    let reference = tuples_along_chain(decomp, root, &chains[0]);
    for chain in &chains[1..] {
        let got = tuples_along_chain(decomp, root, chain);
        if got != reference {
            return Err(format!(
                "branch disagreement: chain {chain:?} represents {got:?}, \
                 expected {reference:?}"
            ));
        }
    }
    // Structural walk: sharing, keys, exhaustion.
    let mut seen: Vec<(NodeId, Tuple, *const NodeInstance)> = Vec::new();
    let mut stack: Vec<NodeRef> = vec![Arc::clone(root)];
    while let Some(inst) = stack.pop() {
        let meta = decomp.node(inst.node());
        if !inst.key().is_valuation_for(meta.key_cols) {
            return Err(format!(
                "instance of {} has key {:?} not matching its columns",
                meta.name,
                inst.key()
            ));
        }
        if inst.node() != decomp.root() && inst.is_exhausted() && !meta.outgoing.is_empty() {
            return Err(format!(
                "instance {:?} of {} is exhausted but still linked",
                inst.key(),
                meta.name
            ));
        }
        let ptr = Arc::as_ptr(&inst);
        match seen
            .iter()
            .find(|(n, k, _)| *n == inst.node() && k == inst.key())
        {
            Some((_, _, prev)) if *prev != ptr => {
                return Err(format!(
                    "instance {:?} of {} is duplicated instead of shared",
                    inst.key(),
                    meta.name
                ));
            }
            Some(_) => continue, // already visited this exact object
            None => seen.push((inst.node(), inst.key().clone(), ptr)),
        }
        for &e in &meta.outgoing {
            inst.container(decomp, e)
                .scan(&mut |k: &Tuple, child: &NodeRef| {
                    let expected = inst
                        .key()
                        .union(k)
                        .expect("edge key extends instance key")
                        .project(decomp.node(decomp.edge(e).dst).key_cols);
                    if child.key() == &expected {
                        stack.push(Arc::clone(child));
                    }
                    std::ops::ControlFlow::Continue(())
                });
        }
    }
    Ok(reference)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::library::{dcache, diamond, stick};
    use crate::placement::LockPlacement;
    use relc_containers::ContainerKind;
    use relc_spec::Value;

    fn mk_tuple(d: &Decomposition, fields: &[(&str, i64)]) -> Tuple {
        d.schema()
            .tuple(
                &fields
                    .iter()
                    .map(|(n, v)| (*n, Value::from(*v)))
                    .collect::<Vec<_>>(),
            )
            .unwrap()
    }

    /// Hand-builds an instance of the stick decomposition holding one edge
    /// (1, 2, 42), mirroring Fig. 2(b)'s construction.
    #[test]
    fn hand_built_stick_instance_abstracts_correctly() {
        let d = stick(ContainerKind::TreeMap, ContainerKind::TreeMap);
        let p = LockPlacement::coarse(&d).unwrap();
        let root = NodeInstance::new(&d, &p, d.root(), Tuple::empty());
        let u = d.node_by_name("u").unwrap();
        let v = d.node_by_name("v").unwrap();
        let w = d.node_by_name("w").unwrap();

        let full = mk_tuple(&d, &[("src", 1), ("dst", 2), ("weight", 42)]);
        let u_inst = NodeInstance::new(&d, &p, u, full.project(d.node(u).key_cols));
        let v_inst = NodeInstance::new(&d, &p, v, full.project(d.node(v).key_cols));
        let w_inst = NodeInstance::new(&d, &p, w, full.clone());

        let ru = d.edge_between("ρ", "u").unwrap();
        let uv = d.edge_between("u", "v").unwrap();
        let vw = d.edge_between("v", "w").unwrap();
        root.container(&d, ru)
            .write(&full.project(d.edge(ru).cols), Some(Arc::clone(&u_inst)));
        u_inst
            .container(&d, uv)
            .write(&full.project(d.edge(uv).cols), Some(Arc::clone(&v_inst)));
        v_inst
            .container(&d, vw)
            .write(&full.project(d.edge(vw).cols), Some(Arc::clone(&w_inst)));

        let rel = abstract_relation(&d, &root);
        assert_eq!(rel.len(), 1);
        assert!(rel.contains(&full));
        let verified = verify_instance(&d, &root).expect("well-formed");
        assert_eq!(verified, rel);
    }

    #[test]
    fn diamond_branch_disagreement_is_detected() {
        let d = diamond(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
        let p = LockPlacement::fine(&d).unwrap();
        let root = NodeInstance::new(&d, &p, d.root(), Tuple::empty());
        let x = d.node_by_name("x").unwrap();
        let w = d.node_by_name("w").unwrap();
        let z = d.node_by_name("z").unwrap();

        // Populate only the src-side branch: ρ→x→w→z, leaving ρ→y empty.
        let full = mk_tuple(&d, &[("src", 1), ("dst", 2), ("weight", 9)]);
        let x_inst = NodeInstance::new(&d, &p, x, full.project(d.node(x).key_cols));
        let w_inst = NodeInstance::new(&d, &p, w, full.project(d.node(w).key_cols));
        let z_inst = NodeInstance::new(&d, &p, z, full.clone());
        let rx = d.edge_between("ρ", "x").unwrap();
        let xw = d.edge_between("x", "w").unwrap();
        let wz = d.edge_between("w", "z").unwrap();
        root.container(&d, rx)
            .write(&full.project(d.edge(rx).cols), Some(Arc::clone(&x_inst)));
        x_inst
            .container(&d, xw)
            .write(&full.project(d.edge(xw).cols), Some(Arc::clone(&w_inst)));
        w_inst
            .container(&d, wz)
            .write(&full.project(d.edge(wz).cols), Some(Arc::clone(&z_inst)));

        let err = verify_instance(&d, &root).unwrap_err();
        assert!(err.contains("branch disagreement"), "{err}");
    }

    #[test]
    fn duplicate_instead_of_shared_is_detected() {
        let d = dcache();
        let p = LockPlacement::fine(&d).unwrap();
        let root = NodeInstance::new(&d, &p, d.root(), Tuple::empty());
        let x = d.node_by_name("x").unwrap();
        let y = d.node_by_name("y").unwrap();
        let z = d.node_by_name("z").unwrap();

        let full = mk_tuple(&d, &[("parent", 1), ("name", 7), ("child", 2)]);
        let x_inst = NodeInstance::new(&d, &p, x, full.project(d.node(x).key_cols));
        // Two *different* y instances for the same key: a sharing bug.
        let y1 = NodeInstance::new(&d, &p, y, full.project(d.node(y).key_cols));
        let y2 = NodeInstance::new(&d, &p, y, full.project(d.node(y).key_cols));
        let z_inst = NodeInstance::new(&d, &p, z, full.clone());

        let rx = d.edge_between("ρ", "x").unwrap();
        let xy = d.edge_between("x", "y").unwrap();
        let ry = d.edge_between("ρ", "y").unwrap();
        let yz = d.edge_between("y", "z").unwrap();
        root.container(&d, rx)
            .write(&full.project(d.edge(rx).cols), Some(Arc::clone(&x_inst)));
        x_inst
            .container(&d, xy)
            .write(&full.project(d.edge(xy).cols), Some(Arc::clone(&y1)));
        root.container(&d, ry)
            .write(&full.project(d.edge(ry).cols), Some(Arc::clone(&y2)));
        y1.container(&d, yz)
            .write(&full.project(d.edge(yz).cols), Some(Arc::clone(&z_inst)));
        y2.container(&d, yz)
            .write(&full.project(d.edge(yz).cols), Some(Arc::clone(&z_inst)));

        let err = verify_instance(&d, &root).unwrap_err();
        assert!(err.contains("duplicated"), "{err}");
    }

    #[test]
    fn maximal_chains_enumeration() {
        let d = stick(ContainerKind::TreeMap, ContainerKind::TreeMap);
        assert_eq!(maximal_chains(&d).len(), 1);
        let d = diamond(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
        assert_eq!(maximal_chains(&d).len(), 2);
        let d = dcache();
        assert_eq!(maximal_chains(&d).len(), 2);
    }

    #[test]
    fn empty_instance_abstracts_to_empty_relation() {
        let d = stick(ContainerKind::HashMap, ContainerKind::HashMap);
        let p = LockPlacement::coarse(&d).unwrap();
        let root = NodeInstance::new(&d, &p, d.root(), Tuple::empty());
        assert!(abstract_relation(&d, &root).is_empty());
        assert_eq!(verify_instance(&d, &root).unwrap().len(), 0);
        assert!(root.is_exhausted());
    }

    #[test]
    fn stripe_count_respected() {
        let d = stick(ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap);
        let p = LockPlacement::striped_root(&d, 8).unwrap();
        let root = NodeInstance::new(&d, &p, d.root(), Tuple::empty());
        for s in 0..8 {
            let _ = root.lock(s);
        }
        let u = d.node_by_name("u").unwrap();
        let u_inst = NodeInstance::new(&d, &p, u, mk_tuple(&d, &[("src", 1)]));
        let _ = u_inst.lock(0);
        assert!(!format!("{u_inst:?}").is_empty());
    }
}
