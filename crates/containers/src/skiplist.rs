//! A concurrent skip list map — the Rust analog of the JDK
//! `ConcurrentSkipListMap` row of Figure 1: linearizable `lookup` and
//! `write`, *sorted*, weakly-consistent `scan`.
//!
//! The implementation is the lazy skip list of Herlihy et al. (the paper's
//! reference [14] is the same lineage): per-node locks, logical deletion via
//! a `marked` bit, `fully_linked` publication, and unlocked wait-free
//! traversals. Safe memory reclamation uses `crossbeam` epochs: nodes and
//! replaced values are destroyed only after all pinned readers have moved
//! on, and the collector's retired/reclaimed/in-flight counters are
//! surfaced via [`ConcurrentSkipListMap::reclamation_stats`] so churn
//! tests can assert deferral stays bounded.
//!
//! # Locking order (deadlock freedom)
//!
//! Both `insert` and `remove` acquire node locks in **non-increasing key
//! order**: predecessors bottom-up (whose keys are non-increasing with
//! level), and `remove` locks the victim (the largest key involved) first.
//! A thread holding a lock on key `k` therefore never waits for a lock on a
//! key greater than `k`, so the wait-for graph is acyclic.

use std::ops::{Bound, ControlFlow};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::SeqCst};

use crossbeam::epoch::{self, Atomic, Guard, Owned, ReclamationStats, Shared};
use parking_lot::{Mutex, MutexGuard};
use relc_locks::Backoff;

use crate::api::{Container, ContainerKind, Key, Val};
use crate::taxonomy::ContainerProps;

const MAX_HEIGHT: usize = 20;

#[derive(Debug)]
struct Node<K, V> {
    /// `None` only for the head sentinel (conceptually −∞).
    key: Option<K>,
    /// Current value; replaced atomically on update. Null only for the head.
    value: Atomic<V>,
    lock: Mutex<()>,
    marked: AtomicBool,
    fully_linked: AtomicBool,
    /// Tower of next pointers; `next.len()` is the node's height.
    next: Box<[Atomic<Node<K, V>>]>,
}

impl<K, V> Node<K, V> {
    fn height(&self) -> usize {
        self.next.len()
    }
}

fn new_tower<K, V>(height: usize) -> Box<[Atomic<Node<K, V>>]> {
    (0..height).map(|_| Atomic::null()).collect()
}

/// Result of a tower search: `(preds, succs, lfound)` — the per-level
/// predecessors and successors of a key, and the highest level where the
/// key itself was found.
type FindResult<'g, K, V> = (
    Vec<&'g Node<K, V>>,
    Vec<Shared<'g, Node<K, V>>>,
    Option<usize>,
);

/// Geometric (p = 1/2) random height from a thread-local xorshift generator,
/// seeded deterministically per thread.
fn random_height() -> usize {
    use std::cell::Cell;
    static SEED: AtomicU64 = AtomicU64::new(0x9e37_79b9_7f4a_7c15);
    thread_local! {
        static STATE: Cell<u64> =
            Cell::new(SEED.fetch_add(0x9e37_79b9_7f4a_7c15, SeqCst) | 1);
    }
    STATE.with(|s| {
        let mut x = s.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        s.set(x);
        ((x.trailing_ones() as usize) + 1).min(MAX_HEIGHT)
    })
}

/// A concurrency-safe sorted map (Figure 1's `ConcurrentSkipListMap` row).
///
/// # Examples
///
/// ```
/// use relc_containers::{ConcurrentSkipListMap, Container};
/// use std::ops::ControlFlow;
///
/// let m = ConcurrentSkipListMap::new();
/// m.write(&3, Some("c"));
/// m.write(&1, Some("a"));
/// let mut keys = Vec::new();
/// m.scan(&mut |k: &i32, _: &&str| { keys.push(*k); ControlFlow::Continue(()) });
/// assert_eq!(keys, vec![1, 3]); // sorted
/// ```
pub struct ConcurrentSkipListMap<K, V> {
    head: Box<Node<K, V>>,
    len: AtomicUsize,
}

impl<K: Key, V: Val> ConcurrentSkipListMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        ConcurrentSkipListMap {
            head: Box::new(Node {
                key: None,
                value: Atomic::null(),
                lock: Mutex::new(()),
                marked: AtomicBool::new(false),
                fully_linked: AtomicBool::new(true),
                next: new_tower(MAX_HEIGHT),
            }),
            len: AtomicUsize::new(0),
        }
    }

    /// Finds predecessors and successors of `key` at every level.
    /// Returns `(preds, succs, lfound)` where `lfound` is the highest level
    /// at which a node with exactly `key` was found.
    fn find<'g>(&'g self, key: &K, guard: &'g Guard) -> FindResult<'g, K, V> {
        let mut preds: Vec<&'g Node<K, V>> = vec![&*self.head; MAX_HEIGHT];
        let mut succs: Vec<Shared<'g, Node<K, V>>> = vec![Shared::null(); MAX_HEIGHT];
        let mut lfound = None;
        let mut pred: &'g Node<K, V> = &self.head;
        for level in (0..MAX_HEIGHT).rev() {
            let mut curr = pred.next[level].load(SeqCst, guard);
            // SAFETY: nodes reachable under `guard` are not yet destroyed.
            while let Some(node) = unsafe { curr.as_ref() } {
                let nk = node.key.as_ref().expect("non-head nodes have keys");
                if nk < key {
                    pred = node;
                    curr = node.next[level].load(SeqCst, guard);
                } else {
                    if lfound.is_none() && nk == key {
                        lfound = Some(level);
                    }
                    break;
                }
            }
            preds[level] = pred;
            succs[level] = curr;
        }
        (preds, succs, lfound)
    }

    /// Locks `preds[0..height]` bottom-up, skipping consecutive duplicates
    /// (equal predecessors are always at consecutive levels), and validates
    /// that each `pred.next[level]` still equals `succs[level]` and that no
    /// involved node is marked. Returns the guards on success.
    fn lock_and_validate<'g>(
        preds: &[&'g Node<K, V>],
        succs: &[Shared<'g, Node<K, V>>],
        height: usize,
        expect_succ_unmarked: bool,
        guard: &'g Guard,
    ) -> Option<Vec<MutexGuard<'g, ()>>> {
        let mut guards: Vec<MutexGuard<'g, ()>> = Vec::with_capacity(height);
        let mut prev: Option<*const Node<K, V>> = None;
        for level in 0..height {
            let pred = preds[level];
            if prev != Some(pred as *const _) {
                guards.push(pred.lock.lock());
                prev = Some(pred as *const _);
            }
            if pred.marked.load(SeqCst) {
                return None;
            }
            if expect_succ_unmarked {
                // SAFETY: `succs[level]` was loaded under `guard`; nodes
                // are only freed after all guards quiesce.
                if let Some(s) = unsafe { succs[level].as_ref() } {
                    if s.marked.load(SeqCst) {
                        return None;
                    }
                }
            }
            if pred.next[level].load(SeqCst, guard) != succs[level] {
                return None;
            }
        }
        Some(guards)
    }

    fn insert(&self, key: &K, value: V) -> Option<V> {
        let height = random_height();
        let guard = epoch::pin();
        // Retry paths escalate spin → yield → jittered sleep instead of
        // spinning unboundedly: on an oversubscribed box the thread we are
        // waiting on (a mid-removal unlinker or a mid-publication
        // inserter) may not even be scheduled.
        let mut backoff = Backoff::new();
        loop {
            let (preds, succs, lfound) = self.find(key, &guard);
            if let Some(l) = lfound {
                // SAFETY: found under `guard`.
                let node = unsafe { succs[l].deref() };
                if node.marked.load(SeqCst) {
                    // Mid-removal: retry until it is unlinked.
                    backoff.wait();
                    continue;
                }
                // Wait for the inserter to publish.
                while !node.fully_linked.load(SeqCst) {
                    backoff.wait();
                }
                // Update in place under the node lock (excludes a racing
                // remove from reading a value we are about to replace).
                let _node_guard = node.lock.lock();
                if node.marked.load(SeqCst) {
                    // The remover held this lock from marking through
                    // unlinking, so the node is already unlinked: retry
                    // immediately (and without waiting while we hold the
                    // victim's lock), the next find() cannot see it.
                    continue;
                }
                let old = node.value.swap(Owned::new(value.clone()), SeqCst, &guard);
                // SAFETY: `old` was the published value; we hold the node
                // lock so no other update raced the swap.
                let old_val = unsafe { old.deref() }.clone();
                unsafe { guard.defer_destroy(old) };
                return Some(old_val);
            }

            let Some(lock_guards) = Self::lock_and_validate(&preds, &succs, height, true, &guard)
            else {
                backoff.wait();
                continue;
            };

            let node = Owned::new(Node {
                key: Some(key.clone()),
                value: Atomic::new(value.clone()),
                lock: Mutex::new(()),
                marked: AtomicBool::new(false),
                fully_linked: AtomicBool::new(false),
                next: new_tower(height),
            })
            .into_shared(&guard);
            // SAFETY: just allocated, uniquely reachable through us.
            let node_ref = unsafe { node.deref() };
            for (level, succ) in succs.iter().enumerate().take(height) {
                node_ref.next[level].store(*succ, SeqCst);
            }
            for (level, pred) in preds.iter().enumerate().take(height) {
                pred.next[level].store(node, SeqCst);
            }
            node_ref.fully_linked.store(true, SeqCst);
            drop(lock_guards);
            self.len.fetch_add(1, SeqCst);
            return None;
        }
    }

    fn remove(&self, key: &K) -> Option<V> {
        let guard = epoch::pin();
        let mut victim: Shared<'_, Node<K, V>> = Shared::null();
        let mut victim_guard: Option<MutexGuard<'_, ()>> = None;
        let mut top = 0usize;
        let mut backoff = Backoff::new();
        loop {
            let (preds, succs, lfound) = self.find(key, &guard);
            if victim_guard.is_none() {
                let l = lfound?;
                let cand = succs[l];
                // SAFETY: found under `guard`.
                let node = unsafe { cand.deref() };
                let ready = node.fully_linked.load(SeqCst)
                    && node.height() - 1 == l
                    && !node.marked.load(SeqCst);
                if !ready {
                    return None;
                }
                top = node.height();
                let g = node.lock.lock();
                if node.marked.load(SeqCst) {
                    return None;
                }
                node.marked.store(true, SeqCst);
                victim = cand;
                victim_guard = Some(g);
            }
            // SAFETY: victim is marked and we hold its lock; it cannot be
            // destroyed until we unlink it ourselves.
            let victim_ref = unsafe { victim.deref() };
            let succs_now: Vec<Shared<'_, Node<K, V>>> = (0..top).map(|_| victim).collect();
            let Some(pred_guards) = Self::lock_and_validate(&preds, &succs_now, top, false, &guard)
            else {
                backoff.wait();
                continue;
            };
            // Unlink top-down. Victim's tower is frozen: its lock is held
            // and it is marked, so no insert can link after it.
            for level in (0..top).rev() {
                preds[level].next[level].store(victim_ref.next[level].load(SeqCst, &guard), SeqCst);
            }
            let val = victim_ref.value.load(SeqCst, &guard);
            // SAFETY: value pointer is final (updates exclude via the node
            // lock and check `marked`).
            let old_val = unsafe { val.deref() }.clone();
            unsafe {
                guard.defer_destroy(val);
                guard.defer_destroy(victim);
            }
            drop(pred_guards);
            drop(victim_guard);
            self.len.fetch_sub(1, SeqCst);
            return Some(old_val);
        }
    }

    /// Snapshot of the epoch collector's reclamation counters.
    ///
    /// The epoch domain is process-global (one collector, as in the real
    /// `crossbeam`), so the counters aggregate every epoch-managed
    /// structure — retired nodes and replaced values from *all* skip
    /// lists, not just this one. Use deltas around a workload.
    pub fn reclamation_stats(&self) -> ReclamationStats {
        epoch::reclamation_stats()
    }

    /// Test-only: drives the epoch collector to quiescence (seals the
    /// calling thread's garbage, advances epochs, frees ripe bags) and
    /// returns the final counters. With no concurrently pinned thread the
    /// returned [`ReclamationStats::in_flight`] is 0.
    pub fn flush_reclamation(&self) -> ReclamationStats {
        epoch::flush()
    }
}

impl<K: Key, V: Val> Default for ConcurrentSkipListMap<K, V> {
    fn default() -> Self {
        ConcurrentSkipListMap::new()
    }
}

impl<K: Key, V: Val> Container<K, V> for ConcurrentSkipListMap<K, V> {
    fn lookup(&self, key: &K) -> Option<V> {
        let guard = epoch::pin();
        let (_, succs, lfound) = self.find(key, &guard);
        let l = lfound?;
        // SAFETY: found under `guard`.
        let node = unsafe { succs[l].deref() };
        if node.fully_linked.load(SeqCst) && !node.marked.load(SeqCst) {
            let v = node.value.load(SeqCst, &guard);
            // SAFETY: non-head nodes always hold a value; the epoch guard
            // keeps a replaced value alive for the duration of this read.
            Some(unsafe { v.deref() }.clone())
        } else {
            None
        }
    }

    fn scan(&self, f: &mut dyn FnMut(&K, &V) -> ControlFlow<()>) {
        // Sorted, weakly consistent: walks the bottom level live; entries
        // inserted/removed behind the cursor are not revisited.
        let guard = epoch::pin();
        let mut curr = self.head.next[0].load(SeqCst, &guard);
        // SAFETY: reachable under `guard`.
        while let Some(node) = unsafe { curr.as_ref() } {
            if node.fully_linked.load(SeqCst) && !node.marked.load(SeqCst) {
                let v = node.value.load(SeqCst, &guard);
                let key = node.key.as_ref().expect("non-head nodes have keys");
                // SAFETY: as in `lookup`.
                if f(key, unsafe { v.deref() }).is_break() {
                    return;
                }
            }
            curr = node.next[0].load(SeqCst, &guard);
        }
    }

    fn scan_range(
        &self,
        lo: Bound<&K>,
        hi: Bound<&K>,
        f: &mut dyn FnMut(&K, &V) -> ControlFlow<()>,
    ) {
        // Bounded sorted walk, weakly consistent like `scan`: position at
        // the lower bound via the tower search (O(log n) instead of
        // walking the bottom level from the head), then follow the bottom
        // level until a key passes the upper bound.
        let guard = epoch::pin();
        let mut curr = match lo {
            Bound::Included(b) | Bound::Excluded(b) => self.find(b, &guard).1[0],
            Bound::Unbounded => self.head.next[0].load(SeqCst, &guard),
        };
        // SAFETY: reachable under `guard`, as in `scan`.
        while let Some(node) = unsafe { curr.as_ref() } {
            let key = node.key.as_ref().expect("non-head nodes have keys");
            // find() lands on the first key ≥ the bound; an excluded
            // bound must skip the key itself.
            let skip = matches!(lo, Bound::Excluded(b) if key == b);
            let below = match hi {
                Bound::Included(b) => key <= b,
                Bound::Excluded(b) => key < b,
                Bound::Unbounded => true,
            };
            if !below {
                return;
            }
            if !skip && node.fully_linked.load(SeqCst) && !node.marked.load(SeqCst) {
                let v = node.value.load(SeqCst, &guard);
                // SAFETY: as in `lookup`.
                if f(key, unsafe { v.deref() }).is_break() {
                    return;
                }
            }
            curr = node.next[0].load(SeqCst, &guard);
        }
    }

    fn write(&self, key: &K, value: Option<V>) -> Option<V> {
        match value {
            Some(v) => self.insert(key, v),
            None => self.remove(key),
        }
    }

    fn update_entry(&self, old_key: &K, new_key: &K, value: V) -> Option<V> {
        if old_key == new_key {
            // Same position: one CAS on the node's value pointer via
            // `insert`'s replace path, no unlink/relink at all.
            let old = self.lookup(old_key)?;
            self.insert(new_key, value);
            return Some(old);
        }
        // A key move is remove-then-insert: two linearization points, with
        // a window where unlocked readers see neither key (permitted by
        // the `Container::update_entry` atomicity contract — the runtime
        // holds the edge's placement locks exclusively around this call).
        let old = self.remove(old_key)?;
        self.insert(new_key, value);
        Some(old)
    }

    fn extend_entries(&self, entries: Vec<(K, V)>) -> usize {
        // Inserts are lock-free, so there is no synchronization to fuse;
        // a key-sorted batch still wins by descending warm index paths
        // (each insert's search starts where the previous one ended up in
        // cache). This override just keeps the loop straight-line on
        // `insert` instead of round-tripping through `write`'s dispatch.
        let mut displaced = 0;
        for (k, v) in entries {
            if self.insert(&k, v).is_some() {
                displaced += 1;
            }
        }
        displaced
    }

    fn len(&self) -> usize {
        self.len.load(SeqCst)
    }

    fn props(&self) -> ContainerProps {
        ContainerKind::ConcurrentSkipListMap.props()
    }
}

impl<K, V> Drop for ConcurrentSkipListMap<K, V> {
    fn drop(&mut self) {
        // SAFETY: `&mut self` guarantees no concurrent accessors; walk the
        // bottom level and free every node and its value eagerly.
        unsafe {
            let guard = epoch::unprotected();
            let mut curr = self.head.next[0].load(SeqCst, guard);
            while !curr.is_null() {
                let node = curr.deref();
                let next = node.next[0].load(SeqCst, guard);
                let val = node.value.load(SeqCst, guard);
                if !val.is_null() {
                    drop(val.into_owned());
                }
                drop(curr.into_owned());
                curr = next;
            }
        }
    }
}

impl<K: Key, V: Val> std::fmt::Debug for ConcurrentSkipListMap<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentSkipListMap")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Barrier};

    #[test]
    fn sequential_semantics() {
        let m: ConcurrentSkipListMap<i64, i64> = ConcurrentSkipListMap::new();
        assert_eq!(m.lookup(&1), None);
        assert_eq!(m.write(&1, Some(10)), None);
        assert_eq!(m.write(&1, Some(20)), Some(10));
        assert_eq!(m.lookup(&1), Some(20));
        assert_eq!(m.write(&1, None), Some(20));
        assert_eq!(m.write(&1, None), None);
        assert!(m.is_empty());
    }

    #[test]
    fn sorted_scan_after_random_inserts() {
        let m: ConcurrentSkipListMap<i64, i64> = ConcurrentSkipListMap::new();
        let keys: Vec<i64> = (0..500).map(|i| (i * 7919) % 1009).collect();
        for &k in &keys {
            m.write(&k, Some(k));
        }
        let mut seen = Vec::new();
        m.scan(&mut |k, _| {
            seen.push(*k);
            ControlFlow::Continue(())
        });
        let mut expected = keys;
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(seen, expected);
        assert_eq!(m.len(), seen.len());
    }

    #[test]
    fn dense_insert_remove_cycles() {
        let m: ConcurrentSkipListMap<i64, i64> = ConcurrentSkipListMap::new();
        for round in 0..3 {
            for i in 0..300 {
                m.write(&i, Some(i + round));
            }
            assert_eq!(m.len(), 300);
            for i in 0..300 {
                assert_eq!(m.lookup(&i), Some(i + round));
            }
            for i in 0..300 {
                assert_eq!(m.write(&i, None), Some(i + round));
            }
            assert!(m.is_empty());
        }
    }

    #[test]
    fn concurrent_disjoint_writers() {
        let m: Arc<ConcurrentSkipListMap<i64, i64>> = Arc::new(ConcurrentSkipListMap::new());
        let threads = 8;
        let per = 300i64;
        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads as i64)
            .map(|t| {
                let m = m.clone();
                let b = barrier.clone();
                std::thread::spawn(move || {
                    b.wait();
                    for i in 0..per {
                        m.write(&(t * 10_000 + i), Some(i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.len(), threads * per as usize);
        // All entries present, and globally sorted.
        let mut prev = i64::MIN;
        let mut count = 0;
        m.scan(&mut |k, _| {
            assert!(*k > prev);
            prev = *k;
            count += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(count, threads * per as usize);
    }

    #[test]
    fn concurrent_insert_remove_same_keys() {
        let m: Arc<ConcurrentSkipListMap<i64, i64>> = Arc::new(ConcurrentSkipListMap::new());
        let threads = 8;
        let rounds = 2_000i64;
        let keyspace = 64i64;
        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads as i64)
            .map(|t| {
                let m = m.clone();
                let b = barrier.clone();
                std::thread::spawn(move || {
                    b.wait();
                    let mut x = (t + 1) as u64;
                    for _ in 0..rounds {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = (x % keyspace as u64) as i64;
                        if x & 1 == 0 {
                            m.write(&k, Some(t));
                        } else {
                            m.write(&k, None);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Structural sanity: len agrees with a scan; scan is sorted.
        let mut count = 0usize;
        let mut prev = i64::MIN;
        m.scan(&mut |k, _| {
            assert!(*k > prev, "sorted and duplicate-free");
            prev = *k;
            count += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(count, m.len());
        assert!(count <= keyspace as usize);
    }

    #[test]
    fn concurrent_readers_never_crash_or_see_phantoms() {
        let m: Arc<ConcurrentSkipListMap<i64, i64>> = Arc::new(ConcurrentSkipListMap::new());
        // Invariant maintained by the writer: key k maps to 2*k.
        for k in 0..128 {
            m.write(&k, Some(2 * k));
        }
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let m = m.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut i = 0i64;
                while !stop.load(SeqCst) {
                    let k = i % 128;
                    m.write(&k, None);
                    m.write(&k, Some(2 * k));
                    i += 1;
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut reads = 0u64;
                    while !stop.load(SeqCst) && reads < 200_000 {
                        let k = (reads % 128) as i64;
                        if let Some(v) = m.lookup(&k) {
                            assert_eq!(v, 2 * k, "value must always be consistent");
                        }
                        reads += 1;
                    }
                })
            })
            .collect();
        for r in readers {
            r.join().unwrap();
        }
        stop.store(true, SeqCst);
        writer.join().unwrap();
    }

    #[test]
    fn scan_during_mutation_is_safe() {
        let m: Arc<ConcurrentSkipListMap<i64, i64>> = Arc::new(ConcurrentSkipListMap::new());
        for k in 0..256 {
            m.write(&k, Some(k));
        }
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let m = m.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut i = 0i64;
                while !stop.load(SeqCst) {
                    m.write(&(256 + (i % 64)), Some(i));
                    m.write(&(256 + ((i + 32) % 64)), None);
                    i += 1;
                }
            })
        };
        for _ in 0..200 {
            let mut prev = i64::MIN;
            m.scan(&mut |k, _| {
                assert!(*k > prev, "scan stays sorted under mutation");
                prev = *k;
                ControlFlow::Continue(())
            });
        }
        stop.store(true, SeqCst);
        writer.join().unwrap();
    }

    #[test]
    fn random_height_distribution() {
        let mut counts = [0usize; MAX_HEIGHT + 1];
        for _ in 0..10_000 {
            let h = random_height();
            assert!((1..=MAX_HEIGHT).contains(&h));
            counts[h] += 1;
        }
        // Roughly half the nodes are height 1; definitely more than a third.
        assert!(counts[1] > 3_000, "height-1 count {} too low", counts[1]);
        assert!(counts[1] > counts[2]);
    }

    use std::sync::atomic::AtomicBool;

    #[test]
    fn drop_frees_everything_without_leaks_or_crashes() {
        for _ in 0..10 {
            let m: ConcurrentSkipListMap<i64, String> = ConcurrentSkipListMap::new();
            for i in 0..200 {
                m.write(&i, Some(format!("value-{i}")));
            }
            for i in 0..100 {
                m.write(&i, None);
            }
            drop(m); // Miri/asan would flag leaks; here we assert no crash.
        }
    }
}
