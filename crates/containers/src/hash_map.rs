//! A chained hash map with **no internal synchronization** — the Rust analog
//! of the JDK `HashMap` row of Figure 1.
//!
//! Concurrent lookups/scans are safe (they do not mutate the table), but any
//! write racing any other operation is a data race; the synthesized lock
//! placement must serialize them. See [`crate::extsync::ExtSyncCell`].

use std::ops::ControlFlow;

use crate::api::{Container, ContainerKind, Key, Val};
use crate::extsync::ExtSyncCell;
use crate::hashing::hash_key;
use crate::taxonomy::ContainerProps;

const INITIAL_BUCKETS: usize = 8;
const MAX_LOAD_NUM: usize = 3; // resize when len > buckets * 3/4
const MAX_LOAD_DEN: usize = 4;

#[derive(Debug)]
struct RawTable<K, V> {
    buckets: Vec<Vec<(K, V)>>,
    len: usize,
}

impl<K: Key, V: Val> RawTable<K, V> {
    fn new() -> Self {
        RawTable {
            buckets: (0..INITIAL_BUCKETS).map(|_| Vec::new()).collect(),
            len: 0,
        }
    }

    fn bucket_of(&self, key: &K) -> usize {
        (hash_key(key) % self.buckets.len() as u64) as usize
    }

    fn lookup(&self, key: &K) -> Option<&V> {
        self.buckets[self.bucket_of(key)]
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    fn write(&mut self, key: &K, value: Option<V>) -> Option<V> {
        let b = self.bucket_of(key);
        let bucket = &mut self.buckets[b];
        let pos = bucket.iter().position(|(k, _)| k == key);
        match (pos, value) {
            (Some(i), Some(v)) => Some(std::mem::replace(&mut bucket[i].1, v)),
            (Some(i), None) => {
                let (_, old) = bucket.swap_remove(i);
                self.len -= 1;
                Some(old)
            }
            (None, Some(v)) => {
                bucket.push((key.clone(), v));
                self.len += 1;
                self.maybe_grow();
                None
            }
            (None, None) => None,
        }
    }

    fn maybe_grow(&mut self) {
        if self.len * MAX_LOAD_DEN > self.buckets.len() * MAX_LOAD_NUM {
            let new_size = self.buckets.len() * 2;
            let mut new_buckets: Vec<Vec<(K, V)>> = (0..new_size).map(|_| Vec::new()).collect();
            for bucket in self.buckets.drain(..) {
                for (k, v) in bucket {
                    let idx = (hash_key(&k) % new_size as u64) as usize;
                    new_buckets[idx].push((k, v));
                }
            }
            self.buckets = new_buckets;
        }
    }
}

/// A non-concurrent chained hash map (Figure 1's `HashMap` row).
///
/// # Examples
///
/// ```
/// use relc_containers::{ChainedHashMap, Container};
///
/// let m = ChainedHashMap::new();
/// assert_eq!(m.write(&1, Some("a")), None);
/// assert_eq!(m.lookup(&1), Some("a"));
/// assert_eq!(m.write(&1, None), Some("a"));
/// assert!(m.is_empty());
/// ```
#[derive(Debug)]
pub struct ChainedHashMap<K, V> {
    inner: ExtSyncCell<RawTable<K, V>>,
}

impl<K: Key, V: Val> ChainedHashMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        ChainedHashMap {
            inner: ExtSyncCell::new(RawTable::new()),
        }
    }
}

impl<K: Key, V: Val> Default for ChainedHashMap<K, V> {
    fn default() -> Self {
        ChainedHashMap::new()
    }
}

impl<K: Key, V: Val> Container<K, V> for ChainedHashMap<K, V> {
    fn lookup(&self, key: &K) -> Option<V> {
        self.inner.read(|t| t.lookup(key).cloned())
    }

    fn scan(&self, f: &mut dyn FnMut(&K, &V) -> ControlFlow<()>) {
        self.inner.read(|t| {
            for bucket in &t.buckets {
                for (k, v) in bucket {
                    if f(k, v).is_break() {
                        return;
                    }
                }
            }
        });
    }

    fn write(&self, key: &K, value: Option<V>) -> Option<V> {
        self.inner.write(|t| t.write(key, value))
    }

    fn update_entry(&self, old_key: &K, new_key: &K, value: V) -> Option<V> {
        // One externally synchronized critical section for both writes (the
        // debug race detector sees a single writer span).
        self.inner.write(|t| {
            let old = t.write(old_key, None)?;
            t.write(new_key, Some(value));
            Some(old)
        })
    }

    fn extend_entries(&self, entries: Vec<(K, V)>) -> usize {
        // One externally synchronized writer span for the whole batch
        // instead of one per entry.
        self.inner.write(|t| {
            let mut displaced = 0;
            for (k, v) in entries {
                if t.write(&k, Some(v)).is_some() {
                    displaced += 1;
                }
            }
            displaced
        })
    }

    fn len(&self) -> usize {
        self.inner.read(|t| t.len)
    }

    fn props(&self) -> ContainerProps {
        ContainerKind::HashMap.props()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_update_remove() {
        let m: ChainedHashMap<i64, i64> = ChainedHashMap::new();
        assert_eq!(m.write(&1, Some(10)), None);
        assert_eq!(m.write(&1, Some(20)), Some(10));
        assert_eq!(m.lookup(&1), Some(20));
        assert_eq!(m.len(), 1);
        assert_eq!(m.write(&1, None), Some(20));
        assert_eq!(m.write(&1, None), None);
        assert_eq!(m.lookup(&1), None);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let m: ChainedHashMap<i64, i64> = ChainedHashMap::new();
        for i in 0..1000 {
            assert_eq!(m.write(&i, Some(i * 2)), None);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000 {
            assert_eq!(m.lookup(&i), Some(i * 2), "key {i}");
        }
        assert_eq!(m.lookup(&1000), None);
    }

    #[test]
    fn scan_visits_everything_and_breaks() {
        let m: ChainedHashMap<i64, i64> = ChainedHashMap::new();
        for i in 0..50 {
            m.write(&i, Some(i));
        }
        let mut seen = Vec::new();
        m.scan(&mut |k, _| {
            seen.push(*k);
            ControlFlow::Continue(())
        });
        seen.sort_unstable();
        assert_eq!(seen, (0..50).collect::<Vec<_>>());

        let mut count = 0;
        m.scan(&mut |_, _| {
            count += 1;
            if count == 5 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(count, 5);
    }

    #[test]
    fn remove_then_reinsert() {
        let m: ChainedHashMap<i64, String> = ChainedHashMap::new();
        for i in 0..100 {
            m.write(&i, Some(format!("v{i}")));
        }
        for i in (0..100).step_by(2) {
            assert!(m.write(&i, None).is_some());
        }
        assert_eq!(m.len(), 50);
        for i in (0..100).step_by(2) {
            assert_eq!(m.lookup(&i), None);
            m.write(&i, Some("again".to_owned()));
        }
        assert_eq!(m.len(), 100);
    }

    #[test]
    fn props_row() {
        let m: ChainedHashMap<i64, i64> = ChainedHashMap::new();
        assert_eq!(m.props().name, "HashMap");
        assert!(!m.props().is_concurrency_safe());
    }
}
