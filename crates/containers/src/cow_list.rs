//! A copy-on-write sorted array — the Rust analog of the JDK
//! `CopyOnWriteArrayList` row of Figure 1: every operation is linearizable,
//! and scans iterate over an immutable **snapshot** (§3.1: "iteration behaves
//! as if it operated over a linearizable snapshot of the container").
//!
//! Readers grab an `Arc` to the current snapshot (the linearization point)
//! and never block writers; writers serialize among themselves, clone the
//! array, apply the change, and publish the new snapshot.

use std::ops::{Bound, ControlFlow};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::api::{Container, ContainerKind, Key, Val};
use crate::taxonomy::ContainerProps;

/// A concurrency-safe copy-on-write sorted array map (Figure 1's
/// `CopyOnWriteArrayList` row).
///
/// Entries are kept sorted by key, so scans are sorted *and* snapshot.
/// Writes are O(n); the container shines for read-mostly edges.
///
/// # Examples
///
/// ```
/// use relc_containers::{CowArrayList, Container};
/// use std::ops::ControlFlow;
///
/// let m = CowArrayList::new();
/// m.write(&2, Some("b"));
/// m.write(&1, Some("a"));
/// let mut keys = Vec::new();
/// m.scan(&mut |k: &i32, _v: &&str| { keys.push(*k); ControlFlow::Continue(()) });
/// assert_eq!(keys, vec![1, 2]);
/// ```
#[derive(Debug)]
pub struct CowArrayList<K, V> {
    current: RwLock<Arc<Vec<(K, V)>>>,
}

impl<K: Key, V: Val> CowArrayList<K, V> {
    /// Creates an empty list.
    pub fn new() -> Self {
        CowArrayList {
            current: RwLock::new(Arc::new(Vec::new())),
        }
    }

    /// Takes an O(1) snapshot of the current contents.
    pub fn snapshot(&self) -> Arc<Vec<(K, V)>> {
        Arc::clone(&self.current.read())
    }
}

impl<K: Key, V: Val> Default for CowArrayList<K, V> {
    fn default() -> Self {
        CowArrayList::new()
    }
}

impl<K: Key, V: Val> Container<K, V> for CowArrayList<K, V> {
    fn lookup(&self, key: &K) -> Option<V> {
        let snap = self.snapshot();
        snap.binary_search_by(|(k, _)| k.cmp(key))
            .ok()
            .map(|i| snap[i].1.clone())
    }

    fn scan(&self, f: &mut dyn FnMut(&K, &V) -> ControlFlow<()>) {
        // Linearizable snapshot iteration: the snapshot Arc is the state at
        // the linearization point; concurrent writes are never observed.
        let snap = self.snapshot();
        for (k, v) in snap.iter() {
            if f(k, v).is_break() {
                return;
            }
        }
    }

    fn scan_range(
        &self,
        lo: Bound<&K>,
        hi: Bound<&K>,
        f: &mut dyn FnMut(&K, &V) -> ControlFlow<()>,
    ) {
        // Bounded snapshot iteration: binary-search the start position in
        // the sorted snapshot, walk forward, stop at the first key past
        // the upper bound.
        let snap = self.snapshot();
        let start = match lo {
            Bound::Included(b) => snap.partition_point(|(k, _)| k < b),
            Bound::Excluded(b) => snap.partition_point(|(k, _)| k <= b),
            Bound::Unbounded => 0,
        };
        for (k, v) in &snap[start..] {
            let below = match hi {
                Bound::Included(b) => k <= b,
                Bound::Excluded(b) => k < b,
                Bound::Unbounded => true,
            };
            if !below || f(k, v).is_break() {
                return;
            }
        }
    }

    fn write(&self, key: &K, value: Option<V>) -> Option<V> {
        let mut guard = self.current.write();
        let pos = guard.binary_search_by(|(k, _)| k.cmp(key));
        match (pos, value) {
            (Ok(i), Some(v)) => {
                let mut next: Vec<(K, V)> = (**guard).clone();
                let old = std::mem::replace(&mut next[i].1, v);
                *guard = Arc::new(next);
                Some(old)
            }
            (Ok(i), None) => {
                let mut next: Vec<(K, V)> = (**guard).clone();
                let (_, old) = next.remove(i);
                *guard = Arc::new(next);
                Some(old)
            }
            (Err(i), Some(v)) => {
                let mut next: Vec<(K, V)> = (**guard).clone();
                next.insert(i, (key.clone(), v));
                *guard = Arc::new(next);
                None
            }
            (Err(_), None) => None,
        }
    }

    fn update_entry(&self, old_key: &K, new_key: &K, value: V) -> Option<V> {
        // One array copy carrying both the removal and the insertion — the
        // default path would clone the whole array twice.
        let mut guard = self.current.write();
        let Ok(i) = guard.binary_search_by(|(k, _)| k.cmp(old_key)) else {
            return None;
        };
        let mut next: Vec<(K, V)> = (**guard).clone();
        let (_, old) = next.remove(i);
        let pos = match next.binary_search_by(|(k, _)| k.cmp(new_key)) {
            Ok(j) => {
                next.remove(j); // caller-guaranteed not to happen for a live entry
                j
            }
            Err(j) => j,
        };
        next.insert(pos, (new_key.clone(), value));
        *guard = Arc::new(next);
        Some(old)
    }

    fn extend_entries(&self, entries: Vec<(K, V)>) -> usize {
        // One array copy and one snapshot publication for the whole batch —
        // the default path would clone the array once per entry.
        if entries.is_empty() {
            return 0;
        }
        let mut guard = self.current.write();
        let mut next: Vec<(K, V)> = (**guard).clone();
        let mut displaced = 0;
        for (k, v) in entries {
            match next.binary_search_by(|(nk, _)| nk.cmp(&k)) {
                Ok(i) => {
                    next[i].1 = v;
                    displaced += 1;
                }
                Err(i) => next.insert(i, (k, v)),
            }
        }
        *guard = Arc::new(next);
        displaced
    }

    fn len(&self) -> usize {
        self.current.read().len()
    }

    fn props(&self) -> ContainerProps {
        ContainerKind::CopyOnWriteArrayList.props()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Barrier;

    #[test]
    fn sequential_semantics_sorted() {
        let m: CowArrayList<i64, i64> = CowArrayList::new();
        for k in [5, 1, 3, 2, 4] {
            assert_eq!(m.write(&k, Some(k * 10)), None);
        }
        assert_eq!(m.write(&3, Some(99)), Some(30));
        assert_eq!(m.lookup(&3), Some(99));
        assert_eq!(m.write(&3, None), Some(99));
        assert_eq!(m.write(&3, None), None);
        let mut keys = Vec::new();
        m.scan(&mut |k, _| {
            keys.push(*k);
            ControlFlow::Continue(())
        });
        assert_eq!(keys, vec![1, 2, 4, 5]);
    }

    #[test]
    fn snapshot_isolation_during_scan() {
        let m: Arc<CowArrayList<i64, i64>> = Arc::new(CowArrayList::new());
        for i in 0..100 {
            m.write(&i, Some(i));
        }
        // Start a scan, and in the middle of it, delete everything from
        // another thread; the scan must still see all 100 entries.
        let m2 = m.clone();
        let mut seen = 0usize;
        let barrier = Arc::new(Barrier::new(2));
        let b2 = barrier.clone();
        let deleter = std::thread::spawn(move || {
            b2.wait();
            for i in 0..100 {
                m2.write(&i, None);
            }
        });
        let mut released = false;
        m.scan(&mut |_, _| {
            if !released {
                barrier.wait(); // let the deleter run mid-scan
                released = true;
            }
            seen += 1;
            ControlFlow::Continue(())
        });
        deleter.join().unwrap();
        assert_eq!(seen, 100, "snapshot scan must observe the full snapshot");
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn concurrent_writers_serialize() {
        let m: Arc<CowArrayList<i64, i64>> = Arc::new(CowArrayList::new());
        let threads = 4;
        let per = 200;
        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads as i64)
            .map(|t| {
                let m = m.clone();
                let b = barrier.clone();
                std::thread::spawn(move || {
                    b.wait();
                    for i in 0..per {
                        m.write(&(t * 1000 + i), Some(i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.len(), threads * per as usize);
    }

    #[test]
    fn readers_make_progress_during_writes() {
        let m: Arc<CowArrayList<i64, i64>> = Arc::new(CowArrayList::new());
        m.write(&1, Some(1));
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let m = m.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut i = 2i64;
                while !stop.load(Ordering::Relaxed) {
                    m.write(&(i % 50), Some(i));
                    i += 1;
                }
            })
        };
        for _ in 0..20_000 {
            assert!(m.lookup(&1).is_some());
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }

    #[test]
    fn props_row() {
        let m: CowArrayList<i64, i64> = CowArrayList::new();
        assert!(m.props().is_concurrency_safe());
        assert!(m.props().snapshot_scan);
        assert!(m.props().sorted_scan);
    }
}
