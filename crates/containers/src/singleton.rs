//! A 0-or-1-entry container for singleton edges.
//!
//! Decomposition edges whose source key functionally determines the edge
//! columns hold at most one entry (the dotted "singleton tuple" edges of
//! Figs. 2 and 3). A full map would be wasteful; [`SingletonCell`] is a
//! single slot behind a reader-writer lock, fully linearizable.

use std::ops::ControlFlow;

use parking_lot::RwLock;

use crate::api::{Container, ContainerKind, Key, Val};
use crate::taxonomy::ContainerProps;

/// A concurrency-safe container holding at most one entry.
///
/// # Examples
///
/// ```
/// use relc_containers::{SingletonCell, Container};
///
/// let c = SingletonCell::new();
/// assert_eq!(c.write(&"k", Some(1)), None);
/// assert_eq!(c.lookup(&"k"), Some(1));
/// assert_eq!(c.lookup(&"other"), None);
/// ```
#[derive(Debug)]
pub struct SingletonCell<K, V> {
    slot: RwLock<Option<(K, V)>>,
}

impl<K: Key, V: Val> SingletonCell<K, V> {
    /// Creates an empty cell.
    pub fn new() -> Self {
        SingletonCell {
            slot: RwLock::new(None),
        }
    }
}

impl<K: Key, V: Val> Default for SingletonCell<K, V> {
    fn default() -> Self {
        SingletonCell::new()
    }
}

impl<K: Key, V: Val> Container<K, V> for SingletonCell<K, V> {
    fn lookup(&self, key: &K) -> Option<V> {
        self.slot
            .read()
            .as_ref()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
    }

    fn scan(&self, f: &mut dyn FnMut(&K, &V) -> ControlFlow<()>) {
        if let Some((k, v)) = self.slot.read().as_ref() {
            let _ = f(k, v);
        }
    }

    fn write(&self, key: &K, value: Option<V>) -> Option<V> {
        let mut guard = self.slot.write();
        match value {
            Some(v) => match guard.take() {
                Some((k, old)) if &k == key => {
                    *guard = Some((k, v));
                    Some(old)
                }
                other => {
                    // A singleton edge only ever holds one key at a time; the
                    // synthesis runtime removes the old entry first. If an
                    // entry with a different key is present, replace it —
                    // write(k, v) semantics are "set the value for k" and the
                    // cell has capacity one.
                    *guard = Some((key.clone(), v));
                    other.map(|(_, old)| old)
                }
            },
            None => match guard.take() {
                Some((k, old)) if &k == key => Some(old),
                other => {
                    *guard = other;
                    None
                }
            },
        }
    }

    fn update_entry(&self, old_key: &K, new_key: &K, value: V) -> Option<V> {
        // One slot swap under one writer-lock acquisition, instead of the
        // default's remove + insert (two acquisitions).
        let mut guard = self.slot.write();
        match guard.take() {
            Some((k, old)) if &k == old_key => {
                *guard = Some((new_key.clone(), value));
                Some(old)
            }
            other => {
                *guard = other;
                None
            }
        }
    }

    fn extend_entries(&self, entries: Vec<(K, V)>) -> usize {
        // One writer-lock acquisition; the cell has capacity one, so only
        // the last entry survives (as the default per-entry loop would
        // leave it).
        let mut guard = self.slot.write();
        let mut displaced = 0;
        for (k, v) in entries {
            if guard.replace((k, v)).is_some() {
                displaced += 1;
            }
        }
        displaced
    }

    fn len(&self) -> usize {
        usize::from(self.slot.read().is_some())
    }

    fn props(&self) -> ContainerProps {
        ContainerKind::Singleton.props()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_at_most_one_entry() {
        let c: SingletonCell<i64, i64> = SingletonCell::new();
        assert!(c.is_empty());
        assert_eq!(c.write(&1, Some(10)), None);
        assert_eq!(c.len(), 1);
        // Writing a different key displaces the old entry.
        assert_eq!(c.write(&2, Some(20)), Some(10));
        assert_eq!(c.lookup(&1), None);
        assert_eq!(c.lookup(&2), Some(20));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn remove_only_matching_key() {
        let c: SingletonCell<i64, i64> = SingletonCell::new();
        c.write(&1, Some(10));
        assert_eq!(c.write(&2, None), None, "removing absent key is a no-op");
        assert_eq!(c.len(), 1);
        assert_eq!(c.write(&1, None), Some(10));
        assert!(c.is_empty());
    }

    #[test]
    fn scan_singleton() {
        let c: SingletonCell<i64, i64> = SingletonCell::new();
        let mut seen = Vec::new();
        c.scan(&mut |k, v| {
            seen.push((*k, *v));
            ControlFlow::Continue(())
        });
        assert!(seen.is_empty());
        c.write(&7, Some(70));
        c.scan(&mut |k, v| {
            seen.push((*k, *v));
            ControlFlow::Continue(())
        });
        assert_eq!(seen, vec![(7, 70)]);
    }

    #[test]
    fn update_in_place() {
        let c: SingletonCell<i64, String> = SingletonCell::new();
        c.write(&1, Some("a".into()));
        assert_eq!(c.write(&1, Some("b".into())), Some("a".into()));
        assert_eq!(c.lookup(&1), Some("b".into()));
    }

    #[test]
    fn props_row() {
        let c: SingletonCell<i64, i64> = SingletonCell::new();
        assert!(c.props().is_concurrency_safe());
        assert!(c.props().snapshot_scan);
    }
}
