//! Deterministic hashing for container buckets and lock striping.
//!
//! Hash-based containers and striped lock placements need a hash that is a
//! pure function of the key (no per-process randomization), so that stripe
//! indices (§4.4: `i = t(src) mod k`) are stable and reproducible across
//! runs and threads.

use std::hash::{Hash, Hasher};

/// FNV-1a, 64-bit: small, fast, deterministic.
#[derive(Debug, Clone)]
pub struct FnvHasher(u64);

const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(OFFSET)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(PRIME);
        }
    }
}

/// Hashes a key deterministically.
///
/// # Examples
///
/// ```
/// use relc_containers::hashing::hash_key;
/// assert_eq!(hash_key(&42i64), hash_key(&42i64));
/// assert_ne!(hash_key(&42i64), hash_key(&43i64));
/// ```
pub fn hash_key<K: Hash + ?Sized>(key: &K) -> u64 {
    let mut h = FnvHasher::default();
    key.hash(&mut h);
    // A final avalanche step (splitmix64 finalizer) so sequential integers
    // spread across buckets and stripes.
    let mut x = h.finish();
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash_key("abc"), hash_key("abc"));
        assert_eq!(hash_key(&(1u64, 2u64)), hash_key(&(1u64, 2u64)));
    }

    #[test]
    fn spreads_sequential_keys() {
        // With 16 buckets, 1000 sequential keys should hit every bucket.
        let mut counts = [0usize; 16];
        for i in 0..1000i64 {
            counts[(hash_key(&i) % 16) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 20), "{counts:?}");
    }

    #[test]
    fn differs_for_different_keys() {
        let hashes: std::collections::HashSet<u64> = (0..1000i64).map(|i| hash_key(&i)).collect();
        assert_eq!(
            hashes.len(),
            1000,
            "no collisions expected in this tiny set"
        );
    }
}
