//! A sharded ("striped") hash map — the Rust analog of the JDK
//! `ConcurrentHashMap` row of Figure 1: linearizable `lookup` and `write`,
//! weakly-consistent `scan`.
//!
//! The table is split into a fixed number of shards, each an independent
//! chained hash table behind a reader-writer lock. Point operations touch
//! exactly one shard (linearization point: while holding that shard's lock);
//! scans lock shards one at a time, so a scan may observe a state that never
//! existed at any single instant — precisely the paper's "weakly consistent"
//! iteration (§3.1).

use std::ops::ControlFlow;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::RwLock;

use crate::api::{Container, ContainerKind, Key, Val};
use crate::hashing::hash_key;
use crate::taxonomy::ContainerProps;

const DEFAULT_SHARDS: usize = 16;
const INITIAL_BUCKETS_PER_SHARD: usize = 4;
const MAX_LOAD_NUM: usize = 3;
const MAX_LOAD_DEN: usize = 4;

#[derive(Debug)]
struct Shard<K, V> {
    buckets: Vec<Vec<(K, V)>>,
    len: usize,
}

impl<K: Key, V: Val> Shard<K, V> {
    fn new() -> Self {
        Shard {
            buckets: (0..INITIAL_BUCKETS_PER_SHARD).map(|_| Vec::new()).collect(),
            len: 0,
        }
    }

    fn bucket_of(&self, hash: u64) -> usize {
        // Shard selection uses the low bits; use the high bits for buckets
        // so the two indices stay independent.
        ((hash >> 32) % self.buckets.len() as u64) as usize
    }

    fn write(&mut self, hash: u64, key: &K, value: Option<V>) -> Option<V> {
        let b = self.bucket_of(hash);
        let bucket = &mut self.buckets[b];
        let pos = bucket.iter().position(|(k, _)| k == key);
        match (pos, value) {
            (Some(i), Some(v)) => Some(std::mem::replace(&mut bucket[i].1, v)),
            (Some(i), None) => {
                let (_, old) = bucket.swap_remove(i);
                self.len -= 1;
                Some(old)
            }
            (None, Some(v)) => {
                bucket.push((key.clone(), v));
                self.len += 1;
                if self.len * MAX_LOAD_DEN > self.buckets.len() * MAX_LOAD_NUM {
                    self.grow();
                }
                None
            }
            (None, None) => None,
        }
    }

    fn grow(&mut self) {
        let new_size = self.buckets.len() * 2;
        let mut new_buckets: Vec<Vec<(K, V)>> = (0..new_size).map(|_| Vec::new()).collect();
        for bucket in self.buckets.drain(..) {
            for (k, v) in bucket {
                let idx = ((hash_key(&k) >> 32) % new_size as u64) as usize;
                new_buckets[idx].push((k, v));
            }
        }
        self.buckets = new_buckets;
    }
}

/// A concurrency-safe sharded hash map (Figure 1's `ConcurrentHashMap` row).
///
/// # Examples
///
/// ```
/// use relc_containers::{StripedHashMap, Container};
/// use std::sync::Arc;
///
/// let m = Arc::new(StripedHashMap::new());
/// let m2 = m.clone();
/// let t = std::thread::spawn(move || m2.write(&1, Some("a")));
/// t.join().unwrap();
/// assert_eq!(m.lookup(&1), Some("a"));
/// ```
#[derive(Debug)]
pub struct StripedHashMap<K, V> {
    shards: Box<[RwLock<Shard<K, V>>]>,
    len: AtomicUsize,
}

impl<K: Key, V: Val> StripedHashMap<K, V> {
    /// Creates an empty map with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// Creates an empty map with `shards` shards (rounded up to a power of
    /// two, minimum 1).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        StripedHashMap {
            shards: (0..n).map(|_| RwLock::new(Shard::new())).collect(),
            len: AtomicUsize::new(0),
        }
    }

    fn shard_of(&self, hash: u64) -> usize {
        (hash % self.shards.len() as u64) as usize
    }
}

impl<K: Key, V: Val> Default for StripedHashMap<K, V> {
    fn default() -> Self {
        StripedHashMap::new()
    }
}

impl<K: Key, V: Val> Container<K, V> for StripedHashMap<K, V> {
    fn lookup(&self, key: &K) -> Option<V> {
        let hash = hash_key(key);
        let shard = self.shards[self.shard_of(hash)].read();
        let b = shard.bucket_of(hash);
        shard.buckets[b]
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
    }

    fn scan(&self, f: &mut dyn FnMut(&K, &V) -> ControlFlow<()>) {
        // Weakly consistent: shards are visited one at a time; writes to
        // already-visited shards are not observed, writes to not-yet-visited
        // shards are.
        for shard in self.shards.iter() {
            let guard = shard.read();
            for bucket in &guard.buckets {
                for (k, v) in bucket {
                    if f(k, v).is_break() {
                        return;
                    }
                }
            }
        }
    }

    fn write(&self, key: &K, value: Option<V>) -> Option<V> {
        let hash = hash_key(key);
        let inserting = value.is_some();
        let mut shard = self.shards[self.shard_of(hash)].write();
        let old = shard.write(hash, key, value);
        match (old.is_some(), inserting) {
            (false, true) => {
                self.len.fetch_add(1, Ordering::Relaxed);
            }
            (true, false) => {
                self.len.fetch_sub(1, Ordering::Relaxed);
            }
            _ => {}
        }
        old
    }

    fn update_entry(&self, old_key: &K, new_key: &K, value: V) -> Option<V> {
        // Both writes happen while every involved shard lock is held, so
        // the move is one linearizable step (no observer sees the entry
        // absent under both keys). Shards are locked in index order — two
        // concurrent moves with opposite shard pairs cannot deadlock.
        let (oh, nh) = (hash_key(old_key), hash_key(new_key));
        let (os, ns) = (self.shard_of(oh), self.shard_of(nh));
        let (old, prev) = if os == ns {
            let mut shard = self.shards[os].write();
            let old = shard.write(oh, old_key, None)?;
            (old, shard.write(nh, new_key, Some(value)))
        } else {
            let (lo, hi) = (os.min(ns), os.max(ns));
            let mut g_lo = self.shards[lo].write();
            let mut g_hi = self.shards[hi].write();
            let (old_shard, new_shard) = if os == lo {
                (&mut g_lo, &mut g_hi)
            } else {
                (&mut g_hi, &mut g_lo)
            };
            let old = old_shard.write(oh, old_key, None)?;
            (old, new_shard.write(nh, new_key, Some(value)))
        };
        // The removal and the insertion cancel out unless the new key
        // displaced an existing entry.
        if prev.is_some() {
            self.len.fetch_sub(1, Ordering::Relaxed);
        }
        Some(old)
    }

    fn extend_entries(&self, entries: Vec<(K, V)>) -> usize {
        // Group the batch by shard and lock each touched shard exactly once
        // (in index order, as `update_entry` does), instead of one lock
        // round-trip per entry. Entries within a shard keep batch order, so
        // duplicate keys resolve last-writer-wins exactly like the default.
        let mut by_shard: Vec<Vec<(u64, K, V)>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (k, v) in entries {
            let hash = hash_key(&k);
            by_shard[self.shard_of(hash)].push((hash, k, v));
        }
        let mut displaced = 0;
        let mut inserted = 0;
        for (s, group) in by_shard.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let mut shard = self.shards[s].write();
            for (hash, k, v) in group {
                if shard.write(hash, &k, Some(v)).is_some() {
                    displaced += 1;
                } else {
                    inserted += 1;
                }
            }
        }
        if inserted > 0 {
            self.len.fetch_add(inserted, Ordering::Relaxed);
        }
        displaced
    }

    fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    fn props(&self) -> ContainerProps {
        ContainerKind::ConcurrentHashMap.props()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Barrier};

    #[test]
    fn sequential_semantics() {
        let m: StripedHashMap<i64, i64> = StripedHashMap::new();
        assert_eq!(m.write(&1, Some(10)), None);
        assert_eq!(m.write(&1, Some(20)), Some(10));
        assert_eq!(m.lookup(&1), Some(20));
        assert_eq!(m.write(&1, None), Some(20));
        assert_eq!(m.len(), 0);
        for i in 0..2000 {
            m.write(&i, Some(i));
        }
        assert_eq!(m.len(), 2000);
        for i in 0..2000 {
            assert_eq!(m.lookup(&i), Some(i));
        }
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let m: StripedHashMap<i64, i64> = StripedHashMap::with_shards(5);
        assert_eq!(m.shards.len(), 8);
        let m: StripedHashMap<i64, i64> = StripedHashMap::with_shards(0);
        assert_eq!(m.shards.len(), 1);
    }

    #[test]
    fn concurrent_disjoint_writers() {
        let m: Arc<StripedHashMap<i64, i64>> = Arc::new(StripedHashMap::new());
        let threads = 8;
        let per = 500;
        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads as i64)
            .map(|t| {
                let m = m.clone();
                let b = barrier.clone();
                std::thread::spawn(move || {
                    b.wait();
                    for i in 0..per {
                        m.write(&(t * 10_000 + i), Some(i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.len(), threads * per as usize);
        for t in 0..threads as i64 {
            for i in 0..per {
                assert_eq!(m.lookup(&(t * 10_000 + i)), Some(i));
            }
        }
    }

    #[test]
    fn concurrent_same_key_last_writer_wins_consistently() {
        let m: Arc<StripedHashMap<i64, i64>> = Arc::new(StripedHashMap::new());
        let threads = 4;
        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads as i64)
            .map(|t| {
                let m = m.clone();
                let b = barrier.clone();
                std::thread::spawn(move || {
                    b.wait();
                    for _ in 0..5_000 {
                        m.write(&7, Some(t));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let v = m.lookup(&7).unwrap();
        assert!((0..threads as i64).contains(&v));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn concurrent_readers_during_writes_never_see_torn_state() {
        let m: Arc<StripedHashMap<i64, i64>> = Arc::new(StripedHashMap::new());
        for i in 0..100 {
            m.write(&i, Some(i * 2));
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let m = m.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut round = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    let k = round % 100;
                    m.write(&k, Some(k * 2)); // rewrite same consistent value
                    round += 1;
                }
            })
        };
        for _ in 0..50_000 {
            let k = 42;
            if let Some(v) = m.lookup(&k) {
                assert_eq!(v, k * 2);
            }
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }

    #[test]
    fn weakly_consistent_scan_completes_during_writes() {
        let m: Arc<StripedHashMap<i64, i64>> = Arc::new(StripedHashMap::new());
        for i in 0..1000 {
            m.write(&i, Some(i));
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let m = m.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut i = 1000i64;
                while !stop.load(Ordering::Relaxed) {
                    m.write(&i, Some(i));
                    m.write(&(i - 500), None);
                    i += 1;
                }
            })
        };
        for _ in 0..100 {
            let mut count = 0usize;
            m.scan(&mut |_, _| {
                count += 1;
                ControlFlow::Continue(())
            });
            assert!(count > 0);
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }

    #[test]
    fn props_row() {
        let m: StripedHashMap<i64, i64> = StripedHashMap::new();
        assert!(m.props().is_concurrency_safe());
        assert!(m.props().lookup_is_linearizable());
        assert!(!m.props().sorted_scan);
    }
}
