//! # relc-containers — the container substrate for data representation
//! synthesis
//!
//! This crate implements §3 of *Concurrent Data Representation Synthesis*
//! (PLDI 2012): the container interface (`lookup` / `scan` / `write`), a
//! catalog of container implementations **written from scratch**, and the
//! concurrency-safety taxonomy of Figure 1 that the synthesis compiler
//! consumes.
//!
//! | Paper (JDK) container | This crate | Concurrency |
//! |---|---|---|
//! | `HashMap` | [`ChainedHashMap`] | unsafe under writes |
//! | `TreeMap` | [`AvlTreeMap`] | unsafe under writes, sorted scans |
//! | `ConcurrentHashMap` | [`StripedHashMap`] | linearizable L/W, weak scans |
//! | `ConcurrentSkipListMap` | [`ConcurrentSkipListMap`] | linearizable L/W, weak sorted scans |
//! | `CopyOnWriteArrayList` | [`CowArrayList`] | linearizable, snapshot scans |
//! | splay tree (§3.1 aside) | [`SplayTreeMap`] | even reads are unsafe |
//! | singleton tuples (dotted edges) | [`SingletonCell`] | linearizable |
//!
//! Non-concurrent containers use [`extsync::ExtSyncCell`]: interior
//! mutability whose soundness is discharged by the *synthesized lock
//! placement*, enforced in debug builds by a dynamic race detector.
//!
//! # Example
//!
//! ```
//! use relc_containers::{Container, ContainerKind};
//! use std::ops::ControlFlow;
//!
//! // The synthesizer picks kinds; clients can instantiate them directly too.
//! let m: Box<dyn Container<i64, &'static str>> =
//!     ContainerKind::ConcurrentSkipListMap.instantiate();
//! m.write(&2, Some("b"));
//! m.write(&1, Some("a"));
//! let mut out = Vec::new();
//! m.scan(&mut |k, v| { out.push((*k, *v)); ControlFlow::Continue(()) });
//! assert_eq!(out, vec![(1, "a"), (2, "b")]);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod api;
mod cow_list;
mod hash_map;
mod singleton;
mod skiplist;
mod splay;
mod striped_hash;
mod tree_map;
mod version;

pub mod extsync;
pub mod hashing;
pub mod taxonomy;
pub mod testsupport;

/// Re-export of the epoch-reclamation pin API, for runtime layers that
/// traverse epoch-managed structures (e.g. [`VersionCell`] chains)
/// directly rather than through a container method.
pub mod epoch {
    pub use crossbeam::epoch::{pin, Guard};
}

pub use api::{
    reclamation_flush, reclamation_stats, Container, ContainerKind, Key, ReclamationStats, Val,
};
pub use cow_list::CowArrayList;
pub use hash_map::ChainedHashMap;
pub use singleton::SingletonCell;
pub use skiplist::ConcurrentSkipListMap;
pub use splay::SplayTreeMap;
pub use striped_hash::StripedHashMap;
pub use taxonomy::{render_figure1, ContainerProps, OpKind, OpPair, PairSafety};
pub use tree_map::AvlTreeMap;
pub use version::{version_stats, VersionCell, VersionStats};
