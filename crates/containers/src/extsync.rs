//! Externally-synchronized interior mutability for concurrency-unsafe
//! containers, with a debug-mode dynamic race detector.
//!
//! The paper's non-concurrent containers (`HashMap`, `TreeMap`, splay trees)
//! have *no internal synchronization at all*; their safety under concurrency
//! is discharged entirely by the synthesized lock placement, which serializes
//! access (§4.3: "while we must use locks to protect some containers from all
//! concurrent accesses, in other cases we can rely on the container to
//! mediate concurrent access").
//!
//! In Rust this is exactly an ownership question: the container is shared
//! (`&self`) but mutated, so we need interior mutability whose `Sync`
//! obligation is met by an *external* protocol rather than an internal lock.
//! [`ExtSyncCell`] encapsulates that pattern:
//!
//! * accesses go through [`ExtSyncCell::read`] / [`ExtSyncCell::write`];
//! * the **safety contract** is that the caller serializes conflicting
//!   accesses (concurrent `read`s are allowed iff declared; `write` is
//!   exclusive) — upheld by construction by `relc`'s placement validator;
//! * in debug builds a [`RaceDetector`] counts concurrent readers/writers and
//!   panics the moment the contract is violated, so any unsound placement
//!   fails loudly in tests instead of corrupting memory silently.

use std::cell::UnsafeCell;
use std::fmt;
use std::sync::atomic::{AtomicI32, Ordering};

/// A dynamic checker for the external-synchronization contract.
///
/// State: `0` = idle, `n > 0` = `n` concurrent readers, `-1` = one writer.
/// In release builds the detector compiles to a no-op so benchmarks measure
/// the container, not the checker.
#[derive(Default)]
pub struct RaceDetector {
    #[cfg(debug_assertions)]
    state: AtomicI32,
}

// Keep the import used in release builds.
#[cfg(not(debug_assertions))]
const _: fn() = || {
    let _ = AtomicI32::new(0);
    let _ = Ordering::Relaxed;
};

impl RaceDetector {
    /// Creates an idle detector.
    pub fn new() -> Self {
        RaceDetector::default()
    }

    /// Marks the start of a read; panics on a concurrent writer.
    #[inline]
    pub fn begin_read(&self) {
        #[cfg(debug_assertions)]
        {
            let prev = self.state.fetch_add(1, Ordering::SeqCst);
            assert!(
                prev >= 0,
                "data race detected: read of a concurrency-unsafe container \
                 while a write is in progress (lock placement bug)"
            );
        }
    }

    /// Marks the end of a read.
    #[inline]
    pub fn end_read(&self) {
        #[cfg(debug_assertions)]
        {
            self.state.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Marks the start of a write; panics on any concurrent access.
    #[inline]
    pub fn begin_write(&self) {
        #[cfg(debug_assertions)]
        {
            let prev = self
                .state
                .compare_exchange(0, -1, Ordering::SeqCst, Ordering::SeqCst);
            assert!(
                prev.is_ok(),
                "data race detected: write to a concurrency-unsafe container \
                 while {} other access(es) are in progress (lock placement bug)",
                prev.unwrap_err()
            );
        }
    }

    /// Marks the end of a write.
    #[inline]
    pub fn end_write(&self) {
        #[cfg(debug_assertions)]
        {
            self.state.store(0, Ordering::SeqCst);
        }
    }
}

impl fmt::Debug for RaceDetector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        #[cfg(debug_assertions)]
        {
            write!(f, "RaceDetector({})", self.state.load(Ordering::SeqCst))
        }
        #[cfg(not(debug_assertions))]
        {
            write!(f, "RaceDetector(release)")
        }
    }
}

/// Interior mutability whose `Sync` obligation is discharged by an external
/// synchronization protocol (the synthesized lock placement).
///
/// # Safety contract
///
/// Callers must guarantee that a `write` access never overlaps any other
/// access to the same cell, and that `read` accesses only overlap other
/// `read`s. In this workspace the guarantee is established by
/// `relc`'s placement validator (a concurrency-unsafe container's edge must
/// be protected by a placement that serializes conflicting operations) and
/// double-checked at runtime in debug builds by the embedded
/// [`RaceDetector`].
pub struct ExtSyncCell<T> {
    cell: UnsafeCell<T>,
    detector: RaceDetector,
}

// SAFETY: `ExtSyncCell` hands out `&T` / `&mut T` only under the external
// synchronization contract documented above; given that contract, sharing
// the cell across threads is sound. `T: Send` is required because writers
// on other threads obtain `&mut T`; `T: Sync` is NOT required of callers'
// `T` uses beyond reads, but we conservatively require it so `&T` reads from
// multiple threads are sound for any `T`.
unsafe impl<T: Send + Sync> Sync for ExtSyncCell<T> {}
unsafe impl<T: Send> Send for ExtSyncCell<T> {}

impl<T> ExtSyncCell<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        ExtSyncCell {
            cell: UnsafeCell::new(value),
            detector: RaceDetector::new(),
        }
    }

    /// Runs `f` with shared access to the value.
    ///
    /// Under the safety contract, only other `read`s may run concurrently.
    #[inline]
    pub fn read<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        self.detector.begin_read();
        // SAFETY: external protocol guarantees no concurrent `&mut` exists.
        let r = f(unsafe { &*self.cell.get() });
        self.detector.end_read();
        r
    }

    /// Runs `f` with exclusive access to the value.
    ///
    /// Under the safety contract, no other access may run concurrently.
    #[inline]
    pub fn write<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        self.detector.begin_write();
        // SAFETY: external protocol guarantees exclusivity.
        let r = f(unsafe { &mut *self.cell.get() });
        self.detector.end_write();
        r
    }

    /// Consumes the cell, returning the value.
    pub fn into_inner(self) -> T {
        self.cell.into_inner()
    }

    /// Exclusive access through `&mut self` (statically race-free).
    pub fn get_mut(&mut self) -> &mut T {
        self.cell.get_mut()
    }
}

impl<T: fmt::Debug> fmt::Debug for ExtSyncCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.read(|v| f.debug_tuple("ExtSyncCell").field(v).finish())
    }
}

impl<T: Default> Default for ExtSyncCell<T> {
    fn default() -> Self {
        ExtSyncCell::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(debug_assertions)]
    use std::sync::Arc;

    #[test]
    fn read_write_roundtrip() {
        let cell = ExtSyncCell::new(1);
        assert_eq!(cell.read(|v| *v), 1);
        cell.write(|v| *v = 5);
        assert_eq!(cell.read(|v| *v), 5);
        assert_eq!(cell.into_inner(), 5);
    }

    #[test]
    fn get_mut_and_default() {
        let mut cell: ExtSyncCell<Vec<i32>> = ExtSyncCell::default();
        cell.get_mut().push(3);
        assert_eq!(cell.read(|v| v.len()), 1);
    }

    #[test]
    fn nested_reads_are_allowed() {
        let cell = ExtSyncCell::new(7);
        cell.read(|a| {
            cell.read(|b| {
                assert_eq!(*a, *b);
            });
        });
    }

    #[test]
    #[cfg(debug_assertions)]
    fn detector_catches_write_during_read() {
        let cell = Arc::new(ExtSyncCell::new(0u64));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cell.read(|_| {
                cell.write(|v| *v += 1);
            });
        }));
        assert!(result.is_err(), "write-under-read must be detected");
    }

    #[test]
    #[cfg(debug_assertions)]
    fn detector_catches_concurrent_writers() {
        // Deterministic: the main thread holds a write while another thread
        // attempts one — the second writer must panic.
        let detector = Arc::new(RaceDetector::new());
        detector.begin_write();
        let d2 = detector.clone();
        let second_writer_panicked = std::thread::spawn(move || {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| d2.begin_write())).is_err()
        })
        .join()
        .unwrap();
        assert!(
            second_writer_panicked,
            "overlapping writers must be detected"
        );
        detector.end_write();
        // After release, writing is allowed again.
        detector.begin_write();
        detector.end_write();
    }

    #[test]
    fn detector_debug_nonempty() {
        assert!(!format!("{:?}", RaceDetector::new()).is_empty());
    }
}
