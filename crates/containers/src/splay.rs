//! A splay tree map — §3.1's counterexample: **even concurrent reads are
//! unsafe**, because lookups rebalance the tree ("it would not be safe for
//! threads to perform concurrent reads of a splay tree because splay tree
//! read operations rebalance the tree").
//!
//! Accordingly [`SplayTreeMap::lookup`] takes *write* access to the
//! underlying cell, and the placement validator must serialize every pair of
//! operations on edges represented by this container — including pairs of
//! lookups. The debug-mode race detector enforces this: two unsynchronized
//! concurrent lookups panic.

use std::cmp::Ordering as CmpOrdering;
use std::ops::ControlFlow;

use crate::api::{Container, ContainerKind, Key, Val};
use crate::extsync::ExtSyncCell;
use crate::taxonomy::ContainerProps;

#[derive(Debug)]
struct SplayNode<K, V> {
    key: K,
    value: V,
    left: Link<K, V>,
    right: Link<K, V>,
}

type Link<K, V> = Option<Box<SplayNode<K, V>>>;

#[derive(Debug)]
struct RawSplay<K, V> {
    root: Link<K, V>,
    len: usize,
}

fn rotate_right<K, V>(mut h: Box<SplayNode<K, V>>) -> Box<SplayNode<K, V>> {
    let mut x = h.left.take().expect("rotate_right requires left child");
    h.left = x.right.take();
    x.right = Some(h);
    x
}

fn rotate_left<K, V>(mut h: Box<SplayNode<K, V>>) -> Box<SplayNode<K, V>> {
    let mut x = h.right.take().expect("rotate_left requires right child");
    h.right = x.left.take();
    x.left = Some(h);
    x
}

/// Recursive splay: after this, if `key` is present it is at the root;
/// otherwise a node adjacent to `key` on the search path is at the root.
fn splay_link<K: Key, V: Val>(mut h: Box<SplayNode<K, V>>, key: &K) -> Box<SplayNode<K, V>> {
    match key.cmp(&h.key) {
        CmpOrdering::Equal => h,
        CmpOrdering::Less => {
            let Some(mut l) = h.left.take() else {
                return h;
            };
            match key.cmp(&l.key) {
                CmpOrdering::Less => {
                    // zig-zig
                    if let Some(ll) = l.left.take() {
                        l.left = Some(splay_link(ll, key));
                    }
                    h.left = Some(l);
                    let mut h = rotate_right(h);
                    if h.left.is_some() {
                        h = rotate_right(h);
                    }
                    h
                }
                CmpOrdering::Greater => {
                    // zig-zag
                    if let Some(lr) = l.right.take() {
                        l.right = Some(splay_link(lr, key));
                        if l.right.is_some() {
                            l = rotate_left(l);
                        }
                    }
                    h.left = Some(l);
                    rotate_right(h)
                }
                CmpOrdering::Equal => {
                    h.left = Some(l);
                    rotate_right(h)
                }
            }
        }
        CmpOrdering::Greater => {
            let Some(mut r) = h.right.take() else {
                return h;
            };
            match key.cmp(&r.key) {
                CmpOrdering::Greater => {
                    // zag-zag
                    if let Some(rr) = r.right.take() {
                        r.right = Some(splay_link(rr, key));
                    }
                    h.right = Some(r);
                    let mut h = rotate_left(h);
                    if h.right.is_some() {
                        h = rotate_left(h);
                    }
                    h
                }
                CmpOrdering::Less => {
                    // zag-zig
                    if let Some(rl) = r.left.take() {
                        r.left = Some(splay_link(rl, key));
                        if r.left.is_some() {
                            r = rotate_right(r);
                        }
                    }
                    h.right = Some(r);
                    rotate_left(h)
                }
                CmpOrdering::Equal => {
                    h.right = Some(r);
                    rotate_left(h)
                }
            }
        }
    }
}

impl<K: Key, V: Val> RawSplay<K, V> {
    /// Splays `key` to the root (or an adjacent key, if absent).
    fn splay(&mut self, key: &K) {
        if let Some(root) = self.root.take() {
            self.root = Some(splay_link(root, key));
        }
    }

    fn lookup(&mut self, key: &K) -> Option<V> {
        self.splay(key);
        match &self.root {
            Some(n) if &n.key == key => Some(n.value.clone()),
            _ => None,
        }
    }

    fn insert(&mut self, key: &K, value: V) -> Option<V> {
        self.splay(key);
        match &mut self.root {
            Some(n) if &n.key == key => Some(std::mem::replace(&mut n.value, value)),
            _ => {
                let mut new = Box::new(SplayNode {
                    key: key.clone(),
                    value,
                    left: None,
                    right: None,
                });
                if let Some(mut old_root) = self.root.take() {
                    if *key < old_root.key {
                        new.left = old_root.left.take();
                        new.right = Some(old_root);
                    } else {
                        new.right = old_root.right.take();
                        new.left = Some(old_root);
                    }
                }
                self.root = Some(new);
                self.len += 1;
                None
            }
        }
    }

    fn remove(&mut self, key: &K) -> Option<V> {
        self.splay(key);
        match &self.root {
            Some(n) if &n.key == key => {
                let node = self.root.take().expect("checked above");
                let SplayNode {
                    value, left, right, ..
                } = *node;
                self.root = match (left, right) {
                    (None, r) => r,
                    (l, None) => l,
                    (Some(l), Some(r)) => {
                        // Splay the max of the left subtree to its root,
                        // then attach the right subtree.
                        let mut sub = RawSplay {
                            root: Some(l),
                            len: 0,
                        };
                        sub.splay(key); // key > all left keys: splays max up
                        let mut new_root = sub.root.expect("nonempty");
                        debug_assert!(new_root.right.is_none());
                        new_root.right = Some(r);
                        Some(new_root)
                    }
                };
                self.len -= 1;
                Some(value)
            }
            _ => None,
        }
    }

    fn scan_inorder(
        link: &Link<K, V>,
        f: &mut dyn FnMut(&K, &V) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        if let Some(n) = link {
            Self::scan_inorder(&n.left, f)?;
            f(&n.key, &n.value)?;
            Self::scan_inorder(&n.right, f)?;
        }
        ControlFlow::Continue(())
    }
}

/// A non-concurrent splay tree map whose **reads mutate the tree** (§3.1).
///
/// # Examples
///
/// ```
/// use relc_containers::{SplayTreeMap, Container};
///
/// let m = SplayTreeMap::new();
/// m.write(&2, Some("two"));
/// m.write(&1, Some("one"));
/// assert_eq!(m.lookup(&2), Some("two")); // splays 2 to the root
/// ```
#[derive(Debug)]
pub struct SplayTreeMap<K, V> {
    inner: ExtSyncCell<RawSplay<K, V>>,
}

impl<K: Key, V: Val> SplayTreeMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        SplayTreeMap {
            inner: ExtSyncCell::new(RawSplay { root: None, len: 0 }),
        }
    }
}

impl<K: Key, V: Val> Default for SplayTreeMap<K, V> {
    fn default() -> Self {
        SplayTreeMap::new()
    }
}

impl<K: Key, V: Val> Container<K, V> for SplayTreeMap<K, V> {
    /// Point lookup. **Takes exclusive access**: splaying rebalances the
    /// tree, which is why Figure 1 would list even L/L as unsafe for splay
    /// trees.
    fn lookup(&self, key: &K) -> Option<V> {
        self.inner.write(|t| t.lookup(key))
    }

    fn scan(&self, f: &mut dyn FnMut(&K, &V) -> ControlFlow<()>) {
        // In-order traversal does not splay, but the taxonomy still declares
        // S/* unsafe because lookups may run "concurrently" only under a
        // serializing placement anyway; use read access for the traversal.
        self.inner.read(|t| {
            let _ = RawSplay::scan_inorder(&t.root, f);
        });
    }

    fn write(&self, key: &K, value: Option<V>) -> Option<V> {
        self.inner.write(|t| match value {
            Some(v) => t.insert(key, v),
            None => t.remove(key),
        })
    }

    fn update_entry(&self, old_key: &K, new_key: &K, value: V) -> Option<V> {
        // One writer span for the remove + insert pair (the remove already
        // splays old_key's neighborhood to the root, so the insert that
        // follows is cheap when the keys are close).
        self.inner.write(|t| {
            let old = t.remove(old_key)?;
            t.insert(new_key, value);
            Some(old)
        })
    }

    fn extend_entries(&self, entries: Vec<(K, V)>) -> usize {
        // One writer span; each insert splays its key to the root, so a
        // key-sorted batch keeps successive insertions adjacent.
        self.inner.write(|t| {
            let mut displaced = 0;
            for (k, v) in entries {
                if t.insert(&k, v).is_some() {
                    displaced += 1;
                }
            }
            displaced
        })
    }

    fn len(&self) -> usize {
        self.inner.read(|t| t.len)
    }

    fn props(&self) -> ContainerProps {
        ContainerKind::SplayTreeMap.props()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_map_semantics() {
        let m: SplayTreeMap<i64, i64> = SplayTreeMap::new();
        assert_eq!(m.write(&1, Some(10)), None);
        assert_eq!(m.write(&2, Some(20)), None);
        assert_eq!(m.write(&1, Some(11)), Some(10));
        assert_eq!(m.lookup(&1), Some(11));
        assert_eq!(m.lookup(&3), None);
        assert_eq!(m.write(&1, None), Some(11));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn lookup_splays_to_root() {
        let m: SplayTreeMap<i64, i64> = SplayTreeMap::new();
        for i in 0..100 {
            m.write(&i, Some(i));
        }
        m.lookup(&42);
        m.inner.read(|t| {
            assert_eq!(t.root.as_ref().map(|n| n.key), Some(42));
        });
    }

    #[test]
    fn sorted_scan_after_adversarial_inserts() {
        let m: SplayTreeMap<i64, i64> = SplayTreeMap::new();
        let keys: Vec<i64> = (0..300).map(|i| (i * 31) % 101).collect();
        for &k in &keys {
            m.write(&k, Some(k));
        }
        let mut seen = Vec::new();
        m.scan(&mut |k, _| {
            seen.push(*k);
            ControlFlow::Continue(())
        });
        let mut expected = keys;
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(seen, expected);
    }

    #[test]
    fn remove_all_in_random_order() {
        let m: SplayTreeMap<i64, i64> = SplayTreeMap::new();
        for i in 0..200 {
            m.write(&i, Some(i));
        }
        // Mixed lookups to shuffle the tree shape while removing.
        for i in (0..200).rev() {
            m.lookup(&((i * 13) % 200));
            assert_eq!(m.write(&i, None), Some(i), "removing {i}");
        }
        assert!(m.is_empty());
        assert_eq!(m.lookup(&0), None);
    }

    #[test]
    fn props_reads_unsafe() {
        let m: SplayTreeMap<i64, i64> = SplayTreeMap::new();
        assert!(!m.props().reads_are_safe());
    }

    #[test]
    #[cfg(debug_assertions)]
    fn concurrent_lookups_trip_race_detector() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::{Arc, Barrier};
        // Tripping the detector needs the two threads to actually overlap
        // mid-lookup; on a loaded single-CPU box one run of the experiment
        // can execute the threads back-to-back without any interleaving,
        // so retry the whole experiment a few times before declaring the
        // detector broken.
        for _attempt in 0..20 {
            let m: Arc<SplayTreeMap<i64, i64>> = Arc::new(SplayTreeMap::new());
            for i in 0..1000 {
                m.write(&i, Some(i));
            }
            let barrier = Arc::new(Barrier::new(2));
            let caught = Arc::new(AtomicBool::new(false));
            let mut handles = Vec::new();
            for t in 0..2 {
                let m = m.clone();
                let b = barrier.clone();
                let c = caught.clone();
                handles.push(std::thread::spawn(move || {
                    b.wait();
                    for i in 0..20_000i64 {
                        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            m.lookup(&((i * (t + 1)) % 1000));
                        }));
                        if r.is_err() {
                            c.store(true, Ordering::SeqCst);
                            return;
                        }
                    }
                }));
            }
            for h in handles {
                let _ = h.join();
            }
            if caught.load(Ordering::SeqCst) {
                return;
            }
        }
        panic!("unsynchronized splay lookups must be detected as racy");
    }
}
