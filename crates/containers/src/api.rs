//! The container interface (§3) and the container catalog.
//!
//! "A container is a data structure that implements an associative key-value
//! map interface consisting of read operations `lookup(k)` and `scan(f)`, and
//! a write operation `write(k, v)`."

use std::fmt;
use std::hash::Hash;
use std::ops::{Bound, ControlFlow};

use crate::cow_list::CowArrayList;
use crate::hash_map::ChainedHashMap;
use crate::singleton::SingletonCell;
use crate::skiplist::ConcurrentSkipListMap;
use crate::splay::SplayTreeMap;
use crate::striped_hash::StripedHashMap;
use crate::taxonomy::{ContainerProps, PairSafety};
use crate::tree_map::AvlTreeMap;

pub use crossbeam::epoch::ReclamationStats;

/// Snapshot of the process-wide epoch reclamation counters (retired /
/// reclaimed deferred destructions; see [`ReclamationStats::in_flight`]).
///
/// The epoch domain is global, so this aggregates over every epoch-managed
/// container in the process (today: every [`ConcurrentSkipListMap`]'s
/// retired nodes and replaced values). Runtime layers re-export this so
/// `verify`-style assertions can check that in-flight garbage is bounded
/// and returns to zero at quiescence.
pub fn reclamation_stats() -> ReclamationStats {
    crossbeam::epoch::reclamation_stats()
}

/// Test-only: drives the epoch collector to quiescence and returns the
/// final counters — with no thread pinned, everything retired has been
/// freed and [`ReclamationStats::in_flight`] is 0. See
/// [`ConcurrentSkipListMap::flush_reclamation`].
pub fn reclamation_flush() -> ReclamationStats {
    crossbeam::epoch::flush()
}

/// Requirements on container keys.
///
/// Keys must be totally ordered (sorted containers, lock ordering), hashable
/// (hashed containers, lock striping), cheaply cloneable, and thread-safe.
/// Implemented automatically for every qualifying type.
pub trait Key: Ord + Hash + Clone + Send + Sync + fmt::Debug + 'static {}
impl<T: Ord + Hash + Clone + Send + Sync + fmt::Debug + 'static> Key for T {}

/// Requirements on container values. Implemented automatically.
///
/// Values are cloned out of containers on `lookup`; in the synthesis runtime
/// `V` is an `Arc` so clones are cheap.
pub trait Val: Clone + Send + Sync + fmt::Debug + 'static {}
impl<T: Clone + Send + Sync + fmt::Debug + 'static> Val for T {}

/// The paper's container interface: `lookup`, `scan`, `write` (§3).
///
/// All methods take `&self`; containers that are not concurrency-safe use
/// interior mutability and rely on *external* synchronization supplied by the
/// synthesized lock placement. See [`crate::extsync::ExtSyncCell`] for the
/// safety contract and the debug-mode race detector that enforces it.
pub trait Container<K: Key, V: Val>: Send + Sync + fmt::Debug {
    /// Returns the value associated with `key`, if any.
    fn lookup(&self, key: &K) -> Option<V>;

    /// Iterates over the map, invoking `f` once per entry; `f` may stop the
    /// iteration early by returning [`ControlFlow::Break`].
    ///
    /// Whether iteration is sorted, snapshot, or weakly consistent is
    /// declared by [`Container::props`].
    fn scan(&self, f: &mut dyn FnMut(&K, &V) -> ControlFlow<()>);

    /// Iterates over the entries whose keys lie in `[lo, hi]` (each end
    /// independently inclusive, exclusive, or unbounded), invoking `f`
    /// once per entry; `f` may stop early with [`ControlFlow::Break`].
    ///
    /// Containers with `sorted_scan` keep keys ordered and override this
    /// with a *bounded* traversal that visits only the interval — in key
    /// order, so callers may break at the first key past a limit. The
    /// default is a filtered full scan: every entry is visited, order and
    /// consistency are whatever [`Container::scan`] provides, and
    /// breaking early does **not** imply the remaining keys are out of
    /// range.
    fn scan_range(
        &self,
        lo: Bound<&K>,
        hi: Bound<&K>,
        f: &mut dyn FnMut(&K, &V) -> ControlFlow<()>,
    ) {
        self.scan(&mut |k, v| {
            let above = match lo {
                Bound::Included(b) => k >= b,
                Bound::Excluded(b) => k > b,
                Bound::Unbounded => true,
            };
            let below = match hi {
                Bound::Included(b) => k <= b,
                Bound::Excluded(b) => k < b,
                Bound::Unbounded => true,
            };
            if above && below {
                f(k, v)
            } else {
                ControlFlow::Continue(())
            }
        });
    }

    /// Sets the value associated with `key` to `value`; `None` removes any
    /// existing entry (§3). Returns the previous value, if any.
    fn write(&self, key: &K, value: Option<V>) -> Option<V>;

    /// Moves the entry at `old_key` to `new_key` with a fresh `value`,
    /// returning the displaced old value — the container-level primitive of
    /// the in-place `update` fast path. When no entry exists at `old_key`
    /// the container is left unchanged and `None` is returned (`value` is
    /// dropped).
    ///
    /// Semantically equivalent to `write(old_key, None)` followed (on a
    /// hit) by `write(new_key, Some(value))`, but implementations fuse the
    /// two writes: a single slot swap (singleton), one array copy instead
    /// of two (copy-on-write), one traversal of the synchronization
    /// structure where the keys colocate (striped hash). Callers must
    /// guarantee `new_key` is not already occupied by a *different* entry
    /// (the synthesis runtime's key-uniqueness argument); violating that
    /// clobbers the occupant, exactly as `write` would.
    ///
    /// **Atomicity:** callers must not assume the move is one atomic step
    /// with respect to *unlocked* concurrent readers. Some implementations
    /// fuse it (singleton, copy-on-write, striped hash hold every involved
    /// lock across both writes), but the skip list moves a key as a remove
    /// followed by an insert — two linearization points, with a window
    /// where the entry is absent under both keys. The synthesis runtime
    /// only invokes `update_entry` on edges whose placement locks are held
    /// exclusively, which serializes it against every observer; a future
    /// lock-eliding caller would need a fused implementation first.
    fn update_entry(&self, old_key: &K, new_key: &K, value: V) -> Option<V> {
        let old = self.write(old_key, None)?;
        self.write(new_key, Some(value));
        Some(old)
    }

    /// Inserts every `(key, value)` entry of `entries`, in order, as one
    /// fused bulk operation; returns how many entries displaced an existing
    /// key (including keys written earlier in the same batch).
    ///
    /// Semantically equivalent to `write(k, Some(v))` per entry — the
    /// default implementation is exactly that loop — but implementations
    /// fuse the batch through their synchronization structure: one
    /// writer span instead of one per entry (hash map, AVL tree, splay
    /// tree), one array copy instead of one per entry (copy-on-write),
    /// one lock acquisition per *shard* touched instead of one per entry
    /// (striped hash). Callers that sort `entries` by key additionally
    /// give sorted containers locality along one in-order sweep.
    ///
    /// **Atomicity:** as for [`Container::update_entry`], the batch is not
    /// one atomic step with respect to *unlocked* concurrent readers
    /// unless the implementation says so; the synthesis runtime only
    /// invokes it on edges whose placement locks are held exclusively.
    fn extend_entries(&self, entries: Vec<(K, V)>) -> usize {
        let mut displaced = 0;
        for (k, v) in entries {
            if self.write(&k, Some(v)).is_some() {
                displaced += 1;
            }
        }
        displaced
    }

    /// Number of entries.
    fn len(&self) -> usize;

    /// Whether the container has no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The static property sheet (Figure 1 row) of this implementation.
    fn props(&self) -> ContainerProps;
}

/// The catalog of container implementations available to the synthesizer.
///
/// The first five are the Rust analogs of the JDK containers in Figure 1;
/// [`ContainerKind::SplayTreeMap`] realizes §3.1's aside that even reads can
/// be concurrency-unsafe, and [`ContainerKind::Singleton`] implements the
/// paper's "singleton tuple" edges (dotted edges in Figs. 2 and 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ContainerKind {
    /// Chained hash map; not concurrency-safe (JDK `HashMap` analog).
    HashMap,
    /// AVL tree map with sorted scans; not concurrency-safe (JDK `TreeMap`
    /// analog).
    TreeMap,
    /// Sharded hash map with per-shard reader-writer locks; concurrency-safe,
    /// weakly-consistent scans (JDK `ConcurrentHashMap` analog).
    ConcurrentHashMap,
    /// Lazy concurrent skip list with epoch reclamation; concurrency-safe,
    /// sorted weakly-consistent scans (JDK `ConcurrentSkipListMap` analog).
    ConcurrentSkipListMap,
    /// Copy-on-write sorted array; concurrency-safe with linearizable
    /// snapshot scans (JDK `CopyOnWriteArrayList` analog).
    CopyOnWriteArrayList,
    /// Splay tree map; *reads rebalance the tree*, so even concurrent
    /// lookups are unsafe (§3.1's counterexample).
    SplayTreeMap,
    /// A 0-or-1-entry cell used for functional-dependency-determined
    /// singleton edges; internally locked, fully linearizable.
    Singleton,
}

impl ContainerKind {
    /// All kinds, in catalog order.
    pub const ALL: [ContainerKind; 7] = [
        ContainerKind::HashMap,
        ContainerKind::TreeMap,
        ContainerKind::ConcurrentHashMap,
        ContainerKind::ConcurrentSkipListMap,
        ContainerKind::CopyOnWriteArrayList,
        ContainerKind::SplayTreeMap,
        ContainerKind::Singleton,
    ];

    /// The five rows of Figure 1, in the paper's order.
    pub const FIGURE1: [ContainerKind; 5] = [
        ContainerKind::HashMap,
        ContainerKind::TreeMap,
        ContainerKind::ConcurrentHashMap,
        ContainerKind::ConcurrentSkipListMap,
        ContainerKind::CopyOnWriteArrayList,
    ];

    /// The kinds the autotuner chooses among for map edges (§6.2: "selection
    /// of containers from the options ConcurrentHashMap,
    /// ConcurrentSkipListMap, HashMap, and TreeMap").
    pub const AUTOTUNE_MENU: [ContainerKind; 4] = [
        ContainerKind::ConcurrentHashMap,
        ContainerKind::ConcurrentSkipListMap,
        ContainerKind::HashMap,
        ContainerKind::TreeMap,
    ];

    /// The static property sheet (Figure 1 row) for this kind.
    pub fn props(self) -> ContainerProps {
        use PairSafety::{Linearizable, Unsafe, Weak};
        match self {
            ContainerKind::HashMap => ContainerProps {
                name: "HashMap",
                lookup_lookup: Linearizable,
                lookup_write: Unsafe,
                scan_write: Unsafe,
                write_write: Unsafe,
                lookup_scan: Linearizable,
                scan_scan: Linearizable,
                sorted_scan: false,
                snapshot_scan: false,
            },
            ContainerKind::TreeMap => ContainerProps {
                name: "TreeMap",
                lookup_lookup: Linearizable,
                lookup_write: Unsafe,
                scan_write: Unsafe,
                write_write: Unsafe,
                lookup_scan: Linearizable,
                scan_scan: Linearizable,
                sorted_scan: true,
                snapshot_scan: false,
            },
            ContainerKind::ConcurrentHashMap => ContainerProps {
                name: "ConcurrentHashMap",
                lookup_lookup: Linearizable,
                lookup_write: Linearizable,
                scan_write: Weak,
                write_write: Linearizable,
                lookup_scan: Linearizable,
                scan_scan: Linearizable,
                sorted_scan: false,
                snapshot_scan: false,
            },
            ContainerKind::ConcurrentSkipListMap => ContainerProps {
                name: "ConcurrentSkipListMap",
                lookup_lookup: Linearizable,
                lookup_write: Linearizable,
                scan_write: Weak,
                write_write: Linearizable,
                lookup_scan: Linearizable,
                scan_scan: Linearizable,
                sorted_scan: true,
                snapshot_scan: false,
            },
            ContainerKind::CopyOnWriteArrayList => ContainerProps {
                name: "CopyOnWriteArrayList",
                lookup_lookup: Linearizable,
                lookup_write: Linearizable,
                scan_write: Linearizable,
                write_write: Linearizable,
                lookup_scan: Linearizable,
                scan_scan: Linearizable,
                sorted_scan: true,
                snapshot_scan: true,
            },
            ContainerKind::SplayTreeMap => ContainerProps {
                name: "SplayTreeMap",
                lookup_lookup: Unsafe,
                lookup_write: Unsafe,
                scan_write: Unsafe,
                write_write: Unsafe,
                lookup_scan: Unsafe,
                scan_scan: Unsafe,
                sorted_scan: true,
                snapshot_scan: false,
            },
            ContainerKind::Singleton => ContainerProps {
                name: "Singleton",
                lookup_lookup: Linearizable,
                lookup_write: Linearizable,
                scan_write: Linearizable,
                write_write: Linearizable,
                lookup_scan: Linearizable,
                scan_scan: Linearizable,
                sorted_scan: true,
                snapshot_scan: true,
            },
        }
    }

    /// Instantiates an empty container of this kind.
    pub fn instantiate<K: Key, V: Val>(self) -> Box<dyn Container<K, V>> {
        match self {
            ContainerKind::HashMap => Box::new(ChainedHashMap::new()),
            ContainerKind::TreeMap => Box::new(AvlTreeMap::new()),
            ContainerKind::ConcurrentHashMap => Box::new(StripedHashMap::new()),
            ContainerKind::ConcurrentSkipListMap => Box::new(ConcurrentSkipListMap::new()),
            ContainerKind::CopyOnWriteArrayList => Box::new(CowArrayList::new()),
            ContainerKind::SplayTreeMap => Box::new(SplayTreeMap::new()),
            ContainerKind::Singleton => Box::new(SingletonCell::new()),
        }
    }
}

impl fmt::Display for ContainerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.props().name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instantiate_all_kinds() {
        for kind in ContainerKind::ALL {
            let c: Box<dyn Container<i64, i64>> = kind.instantiate();
            assert!(c.is_empty());
            assert_eq!(c.len(), 0);
            assert_eq!(c.props().name, kind.props().name);
            assert!(!format!("{c:?}").is_empty());
            assert_eq!(kind.to_string(), kind.props().name);
        }
    }

    #[test]
    fn props_match_paper_classification() {
        assert!(!ContainerKind::HashMap.props().is_concurrency_safe());
        assert!(!ContainerKind::TreeMap.props().is_concurrency_safe());
        assert!(ContainerKind::ConcurrentHashMap
            .props()
            .is_concurrency_safe());
        assert!(ContainerKind::ConcurrentSkipListMap
            .props()
            .is_concurrency_safe());
        assert!(ContainerKind::CopyOnWriteArrayList
            .props()
            .is_concurrency_safe());
        assert!(!ContainerKind::SplayTreeMap.props().is_concurrency_safe());
        assert!(ContainerKind::Singleton.props().is_concurrency_safe());
    }

    #[test]
    fn scan_range_agrees_across_all_kinds() {
        use std::ops::Bound::{Excluded, Included, Unbounded};
        for kind in ContainerKind::ALL {
            let c: Box<dyn Container<i64, i64>> = kind.instantiate();
            let n = if kind == ContainerKind::Singleton {
                1
            } else {
                20
            };
            for k in 0..n {
                c.write(&k, Some(k * 10));
            }
            let collect = |lo: Bound<&i64>, hi: Bound<&i64>| {
                let mut got: Vec<(i64, i64)> = Vec::new();
                c.scan_range(lo, hi, &mut |k, v| {
                    got.push((*k, *v));
                    ControlFlow::Continue(())
                });
                got.sort_unstable();
                got
            };
            let expect = |f: &dyn Fn(i64) -> bool| {
                (0..n)
                    .filter(|&k| f(k))
                    .map(|k| (k, k * 10))
                    .collect::<Vec<_>>()
            };
            assert_eq!(
                collect(Included(&3), Excluded(&9)),
                expect(&|k| (3..9).contains(&k)),
                "{kind}"
            );
            assert_eq!(
                collect(Excluded(&3), Included(&9)),
                expect(&|k| k > 3 && k <= 9),
                "{kind}"
            );
            assert_eq!(
                collect(Unbounded, Excluded(&5)),
                expect(&|k| k < 5),
                "{kind}"
            );
            assert_eq!(
                collect(Included(&7), Unbounded),
                expect(&|k| k >= 7),
                "{kind}"
            );
            assert_eq!(collect(Unbounded, Unbounded), expect(&|_| true), "{kind}");
            assert_eq!(collect(Included(&9), Excluded(&9)), vec![], "{kind}");
            // Sorted containers visit the interval in key order and
            // support early exit at a limit.
            if kind.props().sorted_scan {
                let mut got = Vec::new();
                c.scan_range(Included(&2), Unbounded, &mut |k, _| {
                    got.push(*k);
                    if got.len() == 3 {
                        ControlFlow::Break(())
                    } else {
                        ControlFlow::Continue(())
                    }
                });
                let want: Vec<i64> = (2..n.min(5)).collect();
                assert_eq!(got, want, "{kind}");
            }
        }
    }

    #[test]
    fn sorted_scan_flags() {
        assert!(!ContainerKind::HashMap.props().sorted_scan);
        assert!(ContainerKind::TreeMap.props().sorted_scan);
        assert!(!ContainerKind::ConcurrentHashMap.props().sorted_scan);
        assert!(ContainerKind::ConcurrentSkipListMap.props().sorted_scan);
    }
}
