//! Shared test support: drop-tracking values for reclamation tests.
//!
//! [`DropCounter`] is a container value whose every clone is counted: a
//! [`DropFamily`] tracks how many instances are currently alive, and each
//! instance panics if it is ever dropped twice (the observable symptom of
//! a reclamation bug that frees a node while a reader can still reach it,
//! or frees it from two collection cycles).
//!
//! This lives in the library (not `#[cfg(test)]`) because both this
//! crate's integration tests and `relc-core`'s churn suites consume it;
//! it has no cost for non-test users who never instantiate it.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering::SeqCst};
use std::sync::Arc;

/// Shared live/total accounting for a family of [`DropCounter`] values.
#[derive(Debug, Default)]
pub struct DropFamily {
    live: AtomicI64,
    created: AtomicU64,
    dropped: AtomicU64,
}

impl DropFamily {
    /// Creates an empty family.
    pub fn new() -> Arc<Self> {
        Arc::new(DropFamily::default())
    }

    /// Mints a new value carrying `payload`.
    pub fn make(self: &Arc<Self>, payload: i64) -> DropCounter {
        self.live.fetch_add(1, SeqCst);
        self.created.fetch_add(1, SeqCst);
        DropCounter {
            payload,
            family: Arc::clone(self),
            dropped: AtomicBool::new(false),
        }
    }

    /// Instances currently alive (created or cloned, not yet dropped).
    pub fn live(&self) -> i64 {
        self.live.load(SeqCst)
    }

    /// Total instances ever created (including clones).
    pub fn created(&self) -> u64 {
        self.created.load(SeqCst)
    }

    /// Total instances dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(SeqCst)
    }
}

/// A drop-tracking value: increments its family's live count on creation
/// and clone, decrements exactly once on drop, and panics on double drop.
pub struct DropCounter {
    payload: i64,
    family: Arc<DropFamily>,
    dropped: AtomicBool,
}

impl DropCounter {
    /// The payload this instance carries.
    pub fn payload(&self) -> i64 {
        self.payload
    }

    /// The family this instance reports to.
    pub fn family(&self) -> &Arc<DropFamily> {
        &self.family
    }
}

impl Clone for DropCounter {
    fn clone(&self) -> Self {
        assert!(
            !self.dropped.load(SeqCst),
            "cloned a DropCounter that was already dropped (use after free)"
        );
        self.family.make(self.payload)
    }
}

impl Drop for DropCounter {
    fn drop(&mut self) {
        assert!(
            !self.dropped.swap(true, SeqCst),
            "DropCounter dropped twice (payload {})",
            self.payload
        );
        self.family.live.fetch_sub(1, SeqCst);
        self.family.dropped.fetch_add(1, SeqCst);
    }
}

impl PartialEq for DropCounter {
    fn eq(&self, other: &Self) -> bool {
        self.payload == other.payload
    }
}

impl Eq for DropCounter {}

impl fmt::Debug for DropCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DropCounter({})", self.payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_creations_clones_and_drops() {
        let fam = DropFamily::new();
        let a = fam.make(1);
        let b = a.clone();
        let c = fam.make(2);
        assert_eq!(fam.live(), 3);
        assert_eq!(fam.created(), 3);
        drop(b);
        drop(c);
        assert_eq!(fam.live(), 1);
        assert_eq!(fam.dropped(), 2);
        drop(a);
        assert_eq!(fam.live(), 0);
        assert_eq!(fam.created(), fam.dropped());
    }

    // Note: the panic-on-double-drop path is deliberately not unit-tested —
    // staging a genuine double drop is undefined behavior (the instance's
    // own fields would be dropped twice during unwind). It exists as a
    // tripwire: a reclamation bug that frees a node twice aborts the test
    // run loudly instead of silently corrupting counts.
}
