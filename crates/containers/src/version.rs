//! Multiversion cells: the per-entry version chains behind MVCC snapshot
//! reads.
//!
//! A [`VersionCell`] holds a lock-free, epoch-managed chain of
//! `(commit stamp, value)` nodes, newest first. Mutation (`push`,
//! `truncate`) is only ever performed by a writer that holds the entry's
//! synthesized two-phase locks — writers to the same entry are already
//! serialized by the lock placement, so the chain needs no CAS loops —
//! while readers traverse it with nothing but an epoch guard, resolving
//! the newest version committed at or before their snapshot timestamp.
//!
//! Invariants (maintained by the caller's locking discipline plus the
//! commit clock's commit-before-lock-release ordering):
//!
//! * below the head, stamps are committed and strictly decreasing;
//! * only the head may be tentative ([`TENTATIVE_TS`]), and a tentative
//!   head is invisible to every reader (no snapshot can reach
//!   `u64::MAX`);
//! * a push carrying the *same* stamp as the head replaces the head in
//!   place, so a transaction that overwrites its own write (or compensates
//!   it during rollback) nets to one version.
//!
//! Retired nodes go through the epoch collector, so they are counted by
//! [`ReclamationStats`](crate::ReclamationStats); this module additionally
//! keeps process-global [`VersionStats`] counters (`created` / `retired`)
//! so tests can prove superseded versions are actually reclaimed.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed, Ordering::SeqCst};
use std::sync::Arc;

use crossbeam::epoch::{self, Atomic, Guard, Owned, Shared};
use relc_locks::CommitStamp;

/// Process-global count of version nodes ever created.
static VERSIONS_CREATED: AtomicU64 = AtomicU64::new(0);
/// Process-global count of version nodes retired (handed to the epoch
/// collector or freed on cell drop).
static VERSIONS_RETIRED: AtomicU64 = AtomicU64::new(0);

/// A point-in-time copy of the process-global version-node counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VersionStats {
    /// Version nodes ever created.
    pub created: u64,
    /// Version nodes retired. Trails `created` by the number of nodes
    /// still live in version chains.
    pub retired: u64,
}

impl VersionStats {
    /// Version nodes currently live (created minus retired).
    pub fn live(&self) -> u64 {
        self.created.saturating_sub(self.retired)
    }
}

impl fmt::Display for VersionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "versions-created={} versions-retired={} live={}",
            self.created,
            self.retired,
            self.live()
        )
    }
}

/// Reads the process-global version-node counters.
pub fn version_stats() -> VersionStats {
    VersionStats {
        created: VERSIONS_CREATED.load(Relaxed),
        retired: VERSIONS_RETIRED.load(Relaxed),
    }
}

/// One link in a version chain. `value: None` is a tombstone (the entry
/// was absent as of `stamp`).
struct VersionNode<V> {
    stamp: Arc<CommitStamp>,
    value: Option<V>,
    prev: Atomic<VersionNode<V>>,
}

/// An entry's multiversion history. See the [module docs](self).
pub struct VersionCell<V> {
    head: Atomic<VersionNode<V>>,
}

impl<V> fmt::Debug for VersionCell<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("VersionCell {{ .. }}")
    }
}

fn retire_to_collector<V>(node: Shared<'_, VersionNode<V>>, guard: &Guard) {
    VERSIONS_RETIRED.fetch_add(1, Relaxed);
    // Safety: the caller has unlinked `node` from the chain while holding
    // the entry's write locks, so no new reader can reach it; in-flight
    // readers are protected by their epoch guards until quiescence.
    unsafe { guard.defer_destroy(node) };
}

impl<V: Clone> VersionCell<V> {
    /// Creates a cell whose chain starts with `(stamp, value)`.
    pub fn new(stamp: Arc<CommitStamp>, value: Option<V>) -> Self {
        VERSIONS_CREATED.fetch_add(1, Relaxed);
        VersionCell {
            head: Atomic::new(VersionNode {
                stamp,
                value,
                prev: Atomic::null(),
            }),
        }
    }

    /// Pushes a new version. Caller must hold the entry's write locks
    /// (same-entry pushes are serialized by 2PL). A push with the same
    /// stamp `Arc` as the current head replaces the head in place.
    pub fn push(&self, stamp: Arc<CommitStamp>, value: Option<V>, guard: &Guard) {
        let head = self.head.load(SeqCst, guard);
        // SAFETY: `head` was loaded under `guard` and chain nodes are
        // retired through the epoch collector, so it is live here.
        let prev = match unsafe { head.as_ref() } {
            Some(h) if Arc::ptr_eq(&h.stamp, &stamp) => {
                // Same transaction attempt rewrote this entry (or a
                // rollback compensation undid it): collapse to one node.
                h.prev.load(SeqCst, guard)
            }
            _ => head,
        };
        VERSIONS_CREATED.fetch_add(1, Relaxed);
        let node = Owned::new(VersionNode {
            stamp,
            value,
            prev: Atomic::null(),
        })
        .into_shared(guard);
        // SAFETY: `node` was allocated two lines up and is not yet
        // published; it is trivially live and non-null.
        unsafe { node.deref() }.prev.store(prev, SeqCst);
        self.head.store(node, SeqCst);
        if prev != head {
            // Replaced in place: the old head is unreachable from the
            // chain now (in-flight readers may still hold it).
            retire_to_collector(head, guard);
        }
    }

    /// Resolves the newest version committed at or before `snap`:
    /// `Some(v)` if that version is live, `None` if it is a tombstone or
    /// the chain has no version that old (the entry did not exist yet at
    /// `snap`). Lock-free; requires only an epoch guard.
    pub fn resolve(&self, snap: u64, guard: &Guard) -> Option<V> {
        let mut cur = self.head.load(SeqCst, guard);
        // SAFETY: every link was loaded under `guard`; retired nodes
        // outlive all guards pinned before their unlink.
        while let Some(node) = unsafe { cur.as_ref() } {
            // Tentative stamps load as u64::MAX, so they are skipped like
            // any future-committed version.
            if node.stamp.load() <= snap {
                return node.value.clone();
            }
            cur = node.prev.load(SeqCst, guard);
        }
        None
    }

    /// Drops every version strictly older than the newest committed
    /// version at or before `min_active` (the keeper). Caller must hold
    /// the entry's write locks. Safe because every in-flight reader's
    /// snapshot is `≥ min_active`, so the keeper (or something newer) is
    /// the version any of them resolves.
    pub fn truncate(&self, min_active: u64, guard: &Guard) {
        let mut cur = self.head.load(SeqCst, guard);
        // Find the keeper.
        let keeper = loop {
            // SAFETY: loaded under `guard`; the caller's write locks keep
            // any concurrent truncation out, so links stay reachable.
            match unsafe { cur.as_ref() } {
                Some(node) if node.stamp.load() > min_active => {
                    cur = node.prev.load(SeqCst, guard);
                }
                other => break other,
            }
        };
        let Some(keeper) = keeper else { return };
        // Cut everything below it. In-flight readers that already walked
        // past the keeper keep following the (intact) prev pointers of
        // the cut nodes until their guards quiesce.
        let mut cut = keeper.prev.swap(Shared::null(), SeqCst, guard);
        // SAFETY: the cut nodes were just unlinked by this thread (which
        // holds the entry's write locks) and are not yet handed to the
        // collector, so each is still live while we walk it.
        while let Some(node) = unsafe { cut.as_ref() } {
            let next = node.prev.load(SeqCst, guard);
            retire_to_collector(cut, guard);
            cut = next;
        }
    }

    /// Snapshot of the chain's stamps, newest first: `(stamp, is_live)`
    /// pairs where `is_live` is `false` for tombstones. A tentative head
    /// reports as `u64::MAX`. Lock-free; requires only an epoch guard.
    /// Intended for invariant checking — the chain below the head must be
    /// strictly decreasing and fully committed.
    pub fn chain_stamps(&self, guard: &Guard) -> Vec<(u64, bool)> {
        let mut out = Vec::new();
        let mut cur = self.head.load(SeqCst, guard);
        // SAFETY: every link was loaded under `guard`; see `resolve`.
        while let Some(node) = unsafe { cur.as_ref() } {
            out.push((node.stamp.load(), node.value.is_some()));
            cur = node.prev.load(SeqCst, guard);
        }
        out
    }

    /// Whether this cell will never be visible to any present or future
    /// reader: its entire history is one committed tombstone at or before
    /// `min_active`. Call after [`truncate`](Self::truncate) with the
    /// same bound; caller must hold the entry's write locks. A dead
    /// cell's index entry may be unlinked.
    pub fn is_dead(&self, min_active: u64, guard: &Guard) -> bool {
        let head = self.head.load(SeqCst, guard);
        // SAFETY: loaded under `guard`; see `push` for chain liveness.
        match unsafe { head.as_ref() } {
            Some(node) => {
                node.value.is_none()
                    && node.stamp.load() <= min_active
                    && node.prev.load(SeqCst, guard).is_null()
            }
            None => true,
        }
    }
}

impl<V> Drop for VersionCell<V> {
    fn drop(&mut self) {
        // Safety: drop means no thread can reach this cell anymore, so
        // the chain can be freed eagerly.
        let guard = unsafe { epoch::unprotected() };
        let mut cur = self.head.load(SeqCst, guard);
        while let Some(node) = unsafe { cur.as_ref() } {
            let next = node.prev.load(SeqCst, guard);
            VERSIONS_RETIRED.fetch_add(1, Relaxed);
            // SAFETY: `drop` gives exclusive ownership of the whole
            // chain; each node is reachable exactly once.
            drop(unsafe { cur.into_owned() });
            cur = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn committed(ts_hint: &mut u64) -> Arc<CommitStamp> {
        let s = CommitStamp::new();
        *ts_hint = relc_locks::commit_clock().commit(&s);
        s
    }

    #[test]
    fn resolve_picks_newest_at_or_below_snapshot() {
        let guard = epoch::pin();
        let mut t1 = 0;
        let s1 = committed(&mut t1);
        let cell = VersionCell::new(s1, Some(10));
        let mut t2 = 0;
        let s2 = committed(&mut t2);
        cell.push(s2, Some(20), &guard);

        assert_eq!(cell.resolve(t1.saturating_sub(1), &guard), None);
        assert_eq!(cell.resolve(t1, &guard), Some(10));
        assert_eq!(cell.resolve(t2 - 1, &guard), Some(10));
        assert_eq!(cell.resolve(t2, &guard), Some(20));
        assert_eq!(cell.resolve(u64::MAX - 1, &guard), Some(20));
    }

    #[test]
    fn tentative_heads_are_invisible_and_same_stamp_replaces() {
        let guard = epoch::pin();
        let mut t1 = 0;
        let s1 = committed(&mut t1);
        let cell = VersionCell::new(s1, Some(1));

        let tentative = CommitStamp::new();
        cell.push(Arc::clone(&tentative), Some(2), &guard);
        // Not yet committed: readers still see the old version.
        assert_eq!(cell.resolve(t1, &guard), Some(1));

        // Rewrite by the same attempt: replaced in place, chain stays
        // two nodes deep.
        let before = version_stats();
        cell.push(Arc::clone(&tentative), Some(3), &guard);
        let after = version_stats();
        assert_eq!(after.created - before.created, 1);
        assert_eq!(after.retired - before.retired, 1);

        let t2 = relc_locks::commit_clock().commit(&tentative);
        assert_eq!(cell.resolve(t2, &guard), Some(3));
        assert_eq!(cell.resolve(t2 - 1, &guard), Some(1));
    }

    #[test]
    fn tombstones_resolve_as_absent() {
        let guard = epoch::pin();
        let mut t1 = 0;
        let s1 = committed(&mut t1);
        let cell: VersionCell<i64> = VersionCell::new(s1, Some(7));
        let mut t2 = 0;
        let s2 = committed(&mut t2);
        cell.push(s2, None, &guard);
        assert_eq!(cell.resolve(t1, &guard), Some(7));
        assert_eq!(cell.resolve(t2, &guard), None);
        assert!(!cell.is_dead(t1, &guard), "older live version still needed");
        cell.truncate(t2, &guard);
        assert!(cell.is_dead(t2, &guard));
    }

    #[test]
    fn truncate_keeps_the_newest_version_at_or_below_the_floor() {
        let guard = epoch::pin();
        let mut ts = [0u64; 4];
        let stamps: Vec<_> = ts.iter_mut().map(committed).collect::<Vec<_>>();
        let cell = VersionCell::new(Arc::clone(&stamps[0]), Some(0));
        for (i, s) in stamps.iter().enumerate().skip(1) {
            cell.push(Arc::clone(s), Some(i as i64), &guard);
        }
        let before = version_stats();
        // Floor between ts[1] and ts[2]: keeper is version 1; versions 0
        // is retired, 2 and 3 stay.
        cell.truncate(ts[1], &guard);
        let after = version_stats();
        assert_eq!(after.retired - before.retired, 1);
        assert_eq!(cell.resolve(ts[1], &guard), Some(1));
        assert_eq!(cell.resolve(ts[3], &guard), Some(3));
        // Floor below everything: nothing to cut.
        cell.truncate(0, &guard);
        assert_eq!(version_stats().retired, after.retired);
    }

    #[test]
    fn drop_frees_the_whole_chain() {
        let mut t = 0;
        let before = version_stats();
        {
            let guard = epoch::pin();
            let cell = VersionCell::new(committed(&mut t), Some(1));
            for i in 0..5 {
                cell.push(committed(&mut t), Some(i), &guard);
            }
        }
        let after = version_stats();
        assert_eq!(after.created - before.created, 6);
        assert_eq!(after.retired - before.retired, 6);
    }
}
