//! An AVL tree map with **no internal synchronization** — the Rust analog of
//! the JDK `TreeMap` row of Figure 1. Scans are sorted; the planner's
//! lock-sort elision analysis (§5.2) relies on that.

use std::cmp::Ordering as CmpOrdering;
use std::ops::{Bound, ControlFlow};

use crate::api::{Container, ContainerKind, Key, Val};
use crate::extsync::ExtSyncCell;
use crate::taxonomy::ContainerProps;

#[derive(Debug)]
struct AvlNode<K, V> {
    key: K,
    value: V,
    height: i8,
    left: Link<K, V>,
    right: Link<K, V>,
}

type Link<K, V> = Option<Box<AvlNode<K, V>>>;

fn height<K, V>(link: &Link<K, V>) -> i8 {
    link.as_ref().map_or(0, |n| n.height)
}

fn update_height<K, V>(node: &mut AvlNode<K, V>) {
    node.height = 1 + height(&node.left).max(height(&node.right));
}

fn balance_factor<K, V>(node: &AvlNode<K, V>) -> i8 {
    height(&node.left) - height(&node.right)
}

fn rotate_right<K, V>(mut node: Box<AvlNode<K, V>>) -> Box<AvlNode<K, V>> {
    let mut new_root = node.left.take().expect("rotate_right requires left child");
    node.left = new_root.right.take();
    update_height(&mut node);
    new_root.right = Some(node);
    update_height(&mut new_root);
    new_root
}

fn rotate_left<K, V>(mut node: Box<AvlNode<K, V>>) -> Box<AvlNode<K, V>> {
    let mut new_root = node.right.take().expect("rotate_left requires right child");
    node.right = new_root.left.take();
    update_height(&mut node);
    new_root.left = Some(node);
    update_height(&mut new_root);
    new_root
}

fn rebalance<K, V>(mut node: Box<AvlNode<K, V>>) -> Box<AvlNode<K, V>> {
    update_height(&mut node);
    let bf = balance_factor(&node);
    if bf > 1 {
        if balance_factor(node.left.as_ref().expect("bf>1 implies left")) < 0 {
            node.left = Some(rotate_left(node.left.take().expect("checked")));
        }
        rotate_right(node)
    } else if bf < -1 {
        if balance_factor(node.right.as_ref().expect("bf<-1 implies right")) > 0 {
            node.right = Some(rotate_right(node.right.take().expect("checked")));
        }
        rotate_left(node)
    } else {
        node
    }
}

#[derive(Debug)]
struct RawTree<K, V> {
    root: Link<K, V>,
    len: usize,
}

impl<K: Key, V: Val> RawTree<K, V> {
    fn lookup<'a>(&'a self, key: &K) -> Option<&'a V> {
        let mut cur = self.root.as_deref();
        while let Some(n) = cur {
            match key.cmp(&n.key) {
                CmpOrdering::Less => cur = n.left.as_deref(),
                CmpOrdering::Greater => cur = n.right.as_deref(),
                CmpOrdering::Equal => return Some(&n.value),
            }
        }
        None
    }

    fn insert(link: Link<K, V>, key: &K, value: V) -> (Box<AvlNode<K, V>>, Option<V>) {
        match link {
            None => (
                Box::new(AvlNode {
                    key: key.clone(),
                    value,
                    height: 1,
                    left: None,
                    right: None,
                }),
                None,
            ),
            Some(mut node) => {
                let old = match key.cmp(&node.key) {
                    CmpOrdering::Less => {
                        let (child, old) = Self::insert(node.left.take(), key, value);
                        node.left = Some(child);
                        old
                    }
                    CmpOrdering::Greater => {
                        let (child, old) = Self::insert(node.right.take(), key, value);
                        node.right = Some(child);
                        old
                    }
                    CmpOrdering::Equal => Some(std::mem::replace(&mut node.value, value)),
                };
                (rebalance(node), old)
            }
        }
    }

    fn remove(link: Link<K, V>, key: &K) -> (Link<K, V>, Option<V>) {
        match link {
            None => (None, None),
            Some(mut node) => match key.cmp(&node.key) {
                CmpOrdering::Less => {
                    let (child, old) = Self::remove(node.left.take(), key);
                    node.left = child;
                    (Some(rebalance(node)), old)
                }
                CmpOrdering::Greater => {
                    let (child, old) = Self::remove(node.right.take(), key);
                    node.right = child;
                    (Some(rebalance(node)), old)
                }
                CmpOrdering::Equal => {
                    let old = node.value.clone();
                    match (node.left.take(), node.right.take()) {
                        (None, None) => (None, Some(old)),
                        (Some(l), None) => (Some(l), Some(old)),
                        (None, Some(r)) => (Some(r), Some(old)),
                        (Some(l), Some(r)) => {
                            // Replace with in-order successor (min of right).
                            let (r, succ_k, succ_v) = Self::pop_min(r);
                            node.key = succ_k;
                            node.value = succ_v;
                            node.left = Some(l);
                            node.right = r;
                            (Some(rebalance(node)), Some(old))
                        }
                    }
                }
            },
        }
    }

    fn pop_min(mut node: Box<AvlNode<K, V>>) -> (Link<K, V>, K, V) {
        match node.left.take() {
            None => (node.right.take(), node.key, node.value),
            Some(left) => {
                let (new_left, k, v) = Self::pop_min(left);
                node.left = new_left;
                (Some(rebalance(node)), k, v)
            }
        }
    }

    fn scan_inorder(
        link: &Link<K, V>,
        f: &mut dyn FnMut(&K, &V) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        if let Some(n) = link {
            Self::scan_inorder(&n.left, f)?;
            f(&n.key, &n.value)?;
            Self::scan_inorder(&n.right, f)?;
        }
        ControlFlow::Continue(())
    }

    /// Bounded in-order traversal: subtrees entirely below `lo` or
    /// entirely above `hi` are pruned, so the visit cost is
    /// O(log n + interval size) rather than O(n).
    fn scan_range_inorder(
        link: &Link<K, V>,
        lo: Bound<&K>,
        hi: Bound<&K>,
        f: &mut dyn FnMut(&K, &V) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        let Some(n) = link else {
            return ControlFlow::Continue(());
        };
        let above_lo = match lo {
            Bound::Included(b) => &n.key >= b,
            Bound::Excluded(b) => &n.key > b,
            Bound::Unbounded => true,
        };
        let below_hi = match hi {
            Bound::Included(b) => &n.key <= b,
            Bound::Excluded(b) => &n.key < b,
            Bound::Unbounded => true,
        };
        if above_lo {
            Self::scan_range_inorder(&n.left, lo, hi, f)?;
            if below_hi {
                f(&n.key, &n.value)?;
            }
        }
        if below_hi {
            Self::scan_range_inorder(&n.right, lo, hi, f)?;
        }
        ControlFlow::Continue(())
    }

    #[cfg(test)]
    fn check_invariants(link: &Link<K, V>) -> (i8, Option<(&K, &K)>) {
        match link {
            None => (0, None),
            Some(n) => {
                let (lh, lrange) = Self::check_invariants(&n.left);
                let (rh, rrange) = Self::check_invariants(&n.right);
                assert!((lh - rh).abs() <= 1, "AVL balance violated");
                assert_eq!(n.height, 1 + lh.max(rh), "height cache wrong");
                let mut min = &n.key;
                let mut max = &n.key;
                if let Some((lmin, lmax)) = lrange {
                    assert!(lmax < &n.key, "BST order violated (left)");
                    min = lmin;
                }
                if let Some((rmin, rmax)) = rrange {
                    assert!(rmin > &n.key, "BST order violated (right)");
                    max = rmax;
                }
                (n.height, Some((min, max)))
            }
        }
    }
}

/// A non-concurrent AVL tree map with sorted iteration (Figure 1's `TreeMap`
/// row).
///
/// # Examples
///
/// ```
/// use relc_containers::{AvlTreeMap, Container};
/// use std::ops::ControlFlow;
///
/// let m = AvlTreeMap::new();
/// for k in [3, 1, 2] {
///     m.write(&k, Some(k * 10));
/// }
/// let mut keys = Vec::new();
/// m.scan(&mut |k: &i32, _v: &i32| { keys.push(*k); ControlFlow::Continue(()) });
/// assert_eq!(keys, vec![1, 2, 3]); // sorted scan
/// ```
#[derive(Debug)]
pub struct AvlTreeMap<K, V> {
    inner: ExtSyncCell<RawTree<K, V>>,
}

impl<K: Key, V: Val> AvlTreeMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        AvlTreeMap {
            inner: ExtSyncCell::new(RawTree { root: None, len: 0 }),
        }
    }

    /// Validates AVL and BST invariants (test support).
    #[cfg(test)]
    fn assert_invariants(&self) {
        self.inner.read(|t| {
            RawTree::check_invariants(&t.root);
        });
    }
}

impl<K: Key, V: Val> Default for AvlTreeMap<K, V> {
    fn default() -> Self {
        AvlTreeMap::new()
    }
}

impl<K: Key, V: Val> Container<K, V> for AvlTreeMap<K, V> {
    fn lookup(&self, key: &K) -> Option<V> {
        self.inner.read(|t| t.lookup(key).cloned())
    }

    fn scan(&self, f: &mut dyn FnMut(&K, &V) -> ControlFlow<()>) {
        self.inner.read(|t| {
            let _ = RawTree::scan_inorder(&t.root, f);
        });
    }

    fn scan_range(
        &self,
        lo: Bound<&K>,
        hi: Bound<&K>,
        f: &mut dyn FnMut(&K, &V) -> ControlFlow<()>,
    ) {
        self.inner.read(|t| {
            let _ = RawTree::scan_range_inorder(&t.root, lo, hi, f);
        });
    }

    fn write(&self, key: &K, value: Option<V>) -> Option<V> {
        self.inner.write(|t| match value {
            Some(v) => {
                let (root, old) = RawTree::insert(t.root.take(), key, v);
                t.root = Some(root);
                if old.is_none() {
                    t.len += 1;
                }
                old
            }
            None => {
                let (root, old) = RawTree::remove(t.root.take(), key);
                t.root = root;
                if old.is_some() {
                    t.len -= 1;
                }
                old
            }
        })
    }

    fn update_entry(&self, old_key: &K, new_key: &K, value: V) -> Option<V> {
        // Remove + insert fused into one externally synchronized writer
        // span; len is unchanged by a successful move.
        self.inner.write(|t| {
            let (root, old) = RawTree::remove(t.root.take(), old_key);
            t.root = root;
            let old = old?;
            let (root, prev) = RawTree::insert(t.root.take(), new_key, value);
            t.root = Some(root);
            if prev.is_some() {
                t.len -= 1;
            }
            Some(old)
        })
    }

    fn extend_entries(&self, entries: Vec<(K, V)>) -> usize {
        // One externally synchronized writer span for the whole batch; a
        // key-sorted batch descends along warm paths of the AVL tree.
        self.inner.write(|t| {
            let mut displaced = 0;
            for (k, v) in entries {
                let (root, old) = RawTree::insert(t.root.take(), &k, v);
                t.root = Some(root);
                if old.is_some() {
                    displaced += 1;
                } else {
                    t.len += 1;
                }
            }
            displaced
        })
    }

    fn len(&self) -> usize {
        self.inner.read(|t| t.len)
    }

    fn props(&self) -> ContainerProps {
        ContainerKind::TreeMap.props()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_scan_after_random_inserts() {
        let m: AvlTreeMap<i64, i64> = AvlTreeMap::new();
        let keys: Vec<i64> = (0..200).map(|i| (i * 7919) % 499).collect();
        for &k in &keys {
            m.write(&k, Some(k));
        }
        m.assert_invariants();
        let mut seen = Vec::new();
        m.scan(&mut |k, _| {
            seen.push(*k);
            ControlFlow::Continue(())
        });
        let mut expected: Vec<i64> = keys.clone();
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(seen, expected);
        assert_eq!(m.len(), expected.len());
    }

    #[test]
    fn insert_update_remove() {
        let m: AvlTreeMap<i64, String> = AvlTreeMap::new();
        assert_eq!(m.write(&5, Some("a".into())), None);
        assert_eq!(m.write(&5, Some("b".into())), Some("a".into()));
        assert_eq!(m.lookup(&5), Some("b".into()));
        assert_eq!(m.write(&5, None), Some("b".into()));
        assert_eq!(m.write(&5, None), None);
        assert!(m.is_empty());
    }

    #[test]
    fn remove_inner_nodes_keeps_balance() {
        let m: AvlTreeMap<i64, i64> = AvlTreeMap::new();
        for i in 0..500 {
            m.write(&i, Some(i));
        }
        m.assert_invariants();
        // Remove a middle swathe, forcing successor-replacement paths.
        for i in 100..400 {
            assert_eq!(m.write(&i, None), Some(i));
            if i % 50 == 0 {
                m.assert_invariants();
            }
        }
        m.assert_invariants();
        assert_eq!(m.len(), 200);
        for i in 0..100 {
            assert_eq!(m.lookup(&i), Some(i));
        }
        for i in 100..400 {
            assert_eq!(m.lookup(&i), None);
        }
    }

    #[test]
    fn ascending_and_descending_inserts_stay_balanced() {
        for keys in [
            (0..1000).collect::<Vec<i64>>(),
            (0..1000).rev().collect::<Vec<i64>>(),
        ] {
            let m: AvlTreeMap<i64, i64> = AvlTreeMap::new();
            for &k in &keys {
                m.write(&k, Some(k));
            }
            m.assert_invariants();
            // AVL height bound: 1.44 * log2(n+2); for n=1000 that's < 15.
            let h = m.inner.read(|t| height(&t.root));
            assert!(h <= 15, "AVL height {h} too large for 1000 keys");
        }
    }

    #[test]
    fn scan_break_stops_early() {
        let m: AvlTreeMap<i64, i64> = AvlTreeMap::new();
        for i in 0..100 {
            m.write(&i, Some(i));
        }
        let mut seen = Vec::new();
        m.scan(&mut |k, _| {
            seen.push(*k);
            if seen.len() == 10 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn props_row() {
        let m: AvlTreeMap<i64, i64> = AvlTreeMap::new();
        assert_eq!(m.props().name, "TreeMap");
        assert!(m.props().sorted_scan);
        assert!(!m.props().is_concurrency_safe());
    }
}
