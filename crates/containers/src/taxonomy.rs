//! The taxonomy of concurrent containers (§3, Figure 1).
//!
//! Each container declares, per *pair* of operations, whether two threads may
//! execute those operations in parallel with no external synchronization
//! (*concurrency safety*), and what the container guarantees about event
//! orders when they do (*consistency*). The synthesis compiler consumes only
//! this property sheet; container internals are black boxes.

use std::fmt;

/// The three operations of the container interface (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// `lookup(k)`: point read.
    Lookup,
    /// `scan(f)`: iteration over all entries.
    Scan,
    /// `write(k, v)`: insert, update, or remove (when `v` is `None`).
    Write,
}

impl OpKind {
    /// All operations, in taxonomy order.
    pub const ALL: [OpKind; 3] = [OpKind::Lookup, OpKind::Scan, OpKind::Write];

    /// One-letter abbreviation used in Figure 1 (L, S, W).
    pub fn letter(self) -> char {
        match self {
            OpKind::Lookup => 'L',
            OpKind::Scan => 'S',
            OpKind::Write => 'W',
        }
    }

    /// Whether the operation mutates the container.
    pub fn is_write(self) -> bool {
        matches!(self, OpKind::Write)
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// An unordered pair of operations, e.g. L/W.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpPair(OpKind, OpKind);

impl OpPair {
    /// Creates a pair; the order of arguments is irrelevant.
    pub fn new(a: OpKind, b: OpKind) -> Self {
        // Canonicalize using the L < S < W taxonomy order.
        let rank = |o: OpKind| match o {
            OpKind::Lookup => 0,
            OpKind::Scan => 1,
            OpKind::Write => 2,
        };
        if rank(a) <= rank(b) {
            OpPair(a, b)
        } else {
            OpPair(b, a)
        }
    }

    /// The six distinct pairs, in Figure 1's column order
    /// (L/L, L/W, S/W, W/W, L/S, S/S).
    pub const ALL: [OpPair; 6] = [
        OpPair(OpKind::Lookup, OpKind::Lookup),
        OpPair(OpKind::Lookup, OpKind::Write),
        OpPair(OpKind::Scan, OpKind::Write),
        OpPair(OpKind::Write, OpKind::Write),
        OpPair(OpKind::Lookup, OpKind::Scan),
        OpPair(OpKind::Scan, OpKind::Scan),
    ];

    /// The two components (canonical order).
    pub fn ops(self) -> (OpKind, OpKind) {
        (self.0, self.1)
    }
}

impl fmt::Display for OpPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.0, self.1)
    }
}

/// The safety/consistency verdict for a pair of concurrent operations
/// (the cells of Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PairSafety {
    /// Concurrent execution is unsafe ("no"): external synchronization must
    /// serialize these operations.
    Unsafe,
    /// Safe but only weakly consistent ("weak"): typical of concurrent
    /// iteration that may or may not observe parallel updates.
    Weak,
    /// Safe and linearizable ("yes").
    Linearizable,
}

impl PairSafety {
    /// Figure 1's cell text.
    pub fn cell(self) -> &'static str {
        match self {
            PairSafety::Unsafe => "no",
            PairSafety::Weak => "weak",
            PairSafety::Linearizable => "yes",
        }
    }

    /// Whether parallel execution is safe at all (weak or linearizable).
    pub fn is_safe(self) -> bool {
        !matches!(self, PairSafety::Unsafe)
    }
}

impl fmt::Display for PairSafety {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.cell())
    }
}

/// The static property sheet of a container implementation: its Figure 1 row
/// plus the structural facts the planner needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContainerProps {
    /// Display name (Figure 1 row label).
    pub name: &'static str,
    /// Safety of concurrent L/L.
    pub lookup_lookup: PairSafety,
    /// Safety of concurrent L/W.
    pub lookup_write: PairSafety,
    /// Safety of concurrent S/W.
    pub scan_write: PairSafety,
    /// Safety of concurrent W/W.
    pub write_write: PairSafety,
    /// Safety of concurrent L/S.
    pub lookup_scan: PairSafety,
    /// Safety of concurrent S/S.
    pub scan_scan: PairSafety,
    /// Whether `scan` yields entries in ascending key order. The planner's
    /// static analysis uses this to elide lock sorting (§5.2).
    pub sorted_scan: bool,
    /// Whether `scan` iterates over a linearizable snapshot (§3.1:
    /// "snapshot iteration", e.g. `CopyOnWriteArrayList`), as opposed to
    /// weakly-consistent live iteration.
    pub snapshot_scan: bool,
}

impl ContainerProps {
    /// The verdict for an arbitrary operation pair.
    pub fn safety(&self, pair: OpPair) -> PairSafety {
        use OpKind::{Lookup, Scan, Write};
        match pair.ops() {
            (Lookup, Lookup) => self.lookup_lookup,
            (Lookup, Write) => self.lookup_write,
            (Scan, Write) => self.scan_write,
            (Write, Write) => self.write_write,
            (Lookup, Scan) => self.lookup_scan,
            (Scan, Scan) => self.scan_scan,
            _ => unreachable!("OpPair canonicalizes order"),
        }
    }

    /// A container is *concurrency-safe* if all pairs of operations are
    /// concurrency-safe (§3.1).
    pub fn is_concurrency_safe(&self) -> bool {
        OpPair::ALL.iter().all(|p| self.safety(*p).is_safe())
    }

    /// Whether concurrent *reads* are safe (both L/L, L/S and S/S). False
    /// for e.g. splay trees, whose reads rebalance the tree (§3.1).
    pub fn reads_are_safe(&self) -> bool {
        self.lookup_lookup.is_safe() && self.lookup_scan.is_safe() && self.scan_scan.is_safe()
    }

    /// Whether `lookup` is linearizable with *no* external synchronization,
    /// even against concurrent writes. Required for speculative lock
    /// placements (§4.5): "we require that concurrent containers are
    /// linearizable".
    pub fn lookup_is_linearizable(&self) -> bool {
        self.lookup_write == PairSafety::Linearizable
            && self.lookup_lookup == PairSafety::Linearizable
    }
}

/// Renders Figure 1 for a set of container property sheets.
///
/// The output is a fixed-width text table whose rows are the given
/// containers and whose columns are the Figure 1 operation pairs.
pub fn render_figure1(rows: &[ContainerProps]) -> String {
    let mut out = String::new();
    let name_w = rows
        .iter()
        .map(|p| p.name.len())
        .chain(["Data Structure".len()])
        .max()
        .unwrap_or(14)
        + 2;
    out.push_str(&format!("{:<name_w$}", "Data Structure"));
    for pair in OpPair::ALL {
        out.push_str(&format!("{:>6}", pair.to_string()));
    }
    out.push('\n');
    out.push_str(&"-".repeat(name_w + 6 * OpPair::ALL.len()));
    out.push('\n');
    for p in rows {
        out.push_str(&format!("{:<name_w$}", p.name));
        for pair in OpPair::ALL {
            out.push_str(&format!("{:>6}", p.safety(pair).cell()));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ContainerKind;

    #[test]
    fn op_pair_canonicalizes() {
        assert_eq!(
            OpPair::new(OpKind::Write, OpKind::Lookup),
            OpPair::new(OpKind::Lookup, OpKind::Write)
        );
        assert_eq!(
            OpPair::new(OpKind::Write, OpKind::Lookup).to_string(),
            "L/W"
        );
    }

    #[test]
    fn figure1_hash_map_row() {
        // Figure 1: HashMap — L/L yes, L/W no, S/W no, W/W no, L/S & S/S yes.
        let p = ContainerKind::HashMap.props();
        assert_eq!(
            p.safety(OpPair::new(OpKind::Lookup, OpKind::Lookup)),
            PairSafety::Linearizable
        );
        assert_eq!(
            p.safety(OpPair::new(OpKind::Lookup, OpKind::Write)),
            PairSafety::Unsafe
        );
        assert_eq!(
            p.safety(OpPair::new(OpKind::Scan, OpKind::Write)),
            PairSafety::Unsafe
        );
        assert_eq!(
            p.safety(OpPair::new(OpKind::Write, OpKind::Write)),
            PairSafety::Unsafe
        );
        assert_eq!(
            p.safety(OpPair::new(OpKind::Lookup, OpKind::Scan)),
            PairSafety::Linearizable
        );
        assert!(!p.is_concurrency_safe());
        assert!(p.reads_are_safe());
        assert!(!p.lookup_is_linearizable());
    }

    #[test]
    fn figure1_concurrent_hash_map_row() {
        // Figure 1: ConcurrentHashMap — L/L yes, L/W yes, S/W weak, W/W yes.
        let p = ContainerKind::ConcurrentHashMap.props();
        assert_eq!(
            p.safety(OpPair::new(OpKind::Lookup, OpKind::Write)),
            PairSafety::Linearizable
        );
        assert_eq!(
            p.safety(OpPair::new(OpKind::Scan, OpKind::Write)),
            PairSafety::Weak
        );
        assert_eq!(
            p.safety(OpPair::new(OpKind::Write, OpKind::Write)),
            PairSafety::Linearizable
        );
        assert!(p.is_concurrency_safe());
        assert!(p.lookup_is_linearizable());
        assert!(!p.snapshot_scan);
    }

    #[test]
    fn figure1_cow_row_is_fully_linearizable() {
        // Figure 1: CopyOnWriteArrayList — all yes (snapshot iteration).
        let p = ContainerKind::CopyOnWriteArrayList.props();
        for pair in OpPair::ALL {
            assert_eq!(p.safety(pair), PairSafety::Linearizable, "{pair}");
        }
        assert!(p.snapshot_scan);
    }

    #[test]
    fn splay_tree_reads_are_unsafe() {
        // §3.1: "it would not be safe for threads to perform concurrent reads
        // of a splay tree because splay tree read operations rebalance the
        // tree."
        let p = ContainerKind::SplayTreeMap.props();
        assert!(!p.reads_are_safe());
        assert_eq!(
            p.safety(OpPair::new(OpKind::Lookup, OpKind::Lookup)),
            PairSafety::Unsafe
        );
    }

    #[test]
    fn render_figure1_contains_all_rows_and_verdicts() {
        let rows: Vec<ContainerProps> = ContainerKind::FIGURE1.iter().map(|k| k.props()).collect();
        let table = render_figure1(&rows);
        for k in ContainerKind::FIGURE1 {
            assert!(table.contains(k.props().name), "{table}");
        }
        assert!(table.contains("weak"));
        assert!(table.contains("no"));
        assert!(table.contains("yes"));
        assert!(table.contains("L/W"));
    }
}
