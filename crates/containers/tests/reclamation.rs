//! Adversarial battery for the epoch-based reclamation behind the
//! concurrent skip list: every retired node and replaced value must be
//! dropped exactly once once the collector reaches quiescence, and zero
//! times while any reader guard can still reach it.
//!
//! The epoch domain is process-global, so the tests in this binary
//! serialize on a mutex: one test's pinned guard would otherwise stall
//! another test's flush-to-zero assertion.

use std::collections::BTreeSet;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
use std::sync::{mpsc, Arc, Barrier};
use std::time::Duration;

use crossbeam::epoch::{self, Atomic, Owned};
use parking_lot::{Mutex, MutexGuard};
use relc_containers::testsupport::{DropCounter, DropFamily};
use relc_containers::{reclamation_flush, reclamation_stats, ConcurrentSkipListMap, Container};

fn serialize() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
}

/// Runs `f` under a watchdog; panics if it does not finish in time
/// (livelock / lost-wakeup detector for the contention tests).
fn with_watchdog(secs: u64, f: impl FnOnce() + Send + 'static) {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    rx.recv_timeout(Duration::from_secs(secs))
        .expect("watchdog fired: no forward progress");
}

// ---------------------------------------------------------------------------
// Drop-tracking: exactly-once destruction at quiescence.
// ---------------------------------------------------------------------------

#[test]
fn retired_nodes_and_replaced_values_drop_exactly_once_after_flush() {
    let _serial = serialize();
    let fam = DropFamily::new();
    let map: ConcurrentSkipListMap<i64, DropCounter> = ConcurrentSkipListMap::new();

    // 200 inserts, then overwrite half (each retires the replaced value),
    // then remove a quarter (each retires a node and its value).
    for k in 0..200 {
        assert!(map.write(&k, Some(fam.make(k))).is_none());
    }
    for k in 0..100 {
        let old = map.write(&k, Some(fam.make(k + 1000))).expect("replaced");
        assert_eq!(old.payload(), k);
    }
    for k in 0..50 {
        let old = map.write(&k, None).expect("removed");
        assert_eq!(old.payload(), k + 1000);
    }
    assert_eq!(map.len(), 150);

    let stats = map.flush_reclamation();
    assert_eq!(
        stats.in_flight(),
        0,
        "flush at quiescence reclaims everything: {stats:?}"
    );
    // Exactly the container's logical size remains live: every replaced
    // value and removed node's value was dropped exactly once (a double
    // drop would have panicked inside DropCounter and poisoned the run).
    assert_eq!(fam.live(), 150);
    assert_eq!(fam.created() - fam.dropped(), 150);

    // Teardown drops the linked structure eagerly.
    drop(map);
    assert_eq!(fam.live(), 0);
    assert_eq!(fam.created(), fam.dropped());
}

#[test]
fn update_entry_key_moves_reclaim_displaced_values() {
    let _serial = serialize();
    let fam = DropFamily::new();
    let map: ConcurrentSkipListMap<i64, DropCounter> = ConcurrentSkipListMap::new();
    for k in 0..64 {
        map.write(&k, Some(fam.make(k)));
    }
    // Same-key moves replace in place; key moves unlink + reinsert.
    for k in 0..32 {
        assert!(map.update_entry(&k, &k, fam.make(k + 100)).is_some());
    }
    for k in 0..16 {
        assert!(map
            .update_entry(&k, &(k + 1000), fam.make(k + 200))
            .is_some());
    }
    assert_eq!(map.len(), 64);
    let stats = map.flush_reclamation();
    assert_eq!(stats.in_flight(), 0);
    assert_eq!(fam.live(), 64, "one live value per entry after flush");
    drop(map);
    assert_eq!(fam.live(), 0);
}

// ---------------------------------------------------------------------------
// Guard-pinning regression: no reclamation while a reader can still reach
// the retired node.
// ---------------------------------------------------------------------------

#[test]
fn held_guard_blocks_reclamation_until_unpin() {
    let _serial = serialize();
    reclamation_flush(); // drain leftovers so in-flight deltas are crisp

    let fam = DropFamily::new();
    let slot: Atomic<DropCounter> = Atomic::null();
    {
        let g = epoch::pin();
        slot.store(Owned::new(fam.make(1)), SeqCst);
        drop(g);
    }

    // Reader pins and loads the about-to-be-retired value.
    let reader_guard = epoch::pin();
    let held = slot.load(SeqCst, &reader_guard);

    // A second thread replaces the value, retires the old one, and
    // flushes as hard as it can.
    std::thread::scope(|s| {
        s.spawn(|| {
            let g = epoch::pin();
            let old = slot.swap(Owned::new(fam.make(2)), SeqCst, &g);
            unsafe { g.defer_destroy(old) };
            drop(g);
            let stats = reclamation_flush();
            assert!(
                stats.in_flight() >= 1,
                "the reader's pin must hold the retired value in flight: {stats:?}"
            );
        })
        .join()
        .unwrap();
    });

    // The reader's guard predates the retirement, so the value must still
    // be intact — live count says both values exist, and the dereference
    // reads the original payload (a premature free would be a
    // use-after-free caught by DropCounter's double-drop panic at flush,
    // or by the payload assert here).
    assert_eq!(fam.live(), 2);
    assert_eq!(unsafe { held.deref() }.payload(), 1);

    drop(reader_guard);
    let stats = reclamation_flush();
    assert_eq!(stats.in_flight(), 0);
    assert_eq!(fam.live(), 1, "retired value dropped exactly once");

    unsafe {
        let g = epoch::unprotected();
        let cur = slot.load(SeqCst, g);
        g.defer_destroy(cur);
    }
    assert_eq!(fam.live(), 0);
}

#[test]
fn pinned_reader_keeps_skiplist_victims_alive_across_remove_and_flush() {
    let _serial = serialize();
    reclamation_flush();

    let fam = DropFamily::new();
    let map: ConcurrentSkipListMap<i64, DropCounter> = ConcurrentSkipListMap::new();
    for k in 0..32 {
        map.write(&k, Some(fam.make(k)));
    }
    assert_eq!(fam.live(), 32);

    // Pin this thread: anything retired from now on must survive until we
    // unpin, even across a concurrent remover's flush.
    let guard = epoch::pin();
    std::thread::scope(|s| {
        s.spawn(|| {
            for k in 0..16 {
                assert!(map.write(&k, None).is_some());
            }
            let stats = reclamation_flush();
            assert!(
                stats.in_flight() > 0,
                "victims retired under our pin cannot be freed yet: {stats:?}"
            );
        })
        .join()
        .unwrap();
    });
    // All 32 values still alive: 16 in the map, 16 retired-but-pinned.
    assert_eq!(fam.live(), 32);

    drop(guard);
    let stats = reclamation_flush();
    assert_eq!(stats.in_flight(), 0);
    assert_eq!(fam.live(), map.len() as i64);
    assert_eq!(map.len(), 16);
}

// ---------------------------------------------------------------------------
// Churn stress: N threads hammer one key range; reclamation must keep up.
// ---------------------------------------------------------------------------

/// One churn worker: pseudo-random insert / remove / same-key update over
/// `keyspace`, `rounds` times.
fn churn(
    map: &ConcurrentSkipListMap<i64, DropCounter>,
    fam: &Arc<DropFamily>,
    seed: u64,
    rounds: u64,
    keyspace: u64,
) {
    let mut x = seed | 1;
    for _ in 0..rounds {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let k = (x % keyspace) as i64;
        match (x >> 32) % 3 {
            0 => {
                map.write(&k, Some(fam.make(k)));
            }
            1 => {
                map.write(&k, None);
            }
            _ => {
                map.update_entry(&k, &k, fam.make(-k));
            }
        }
    }
}

/// How tightly churn must bound the in-flight garbage peak.
enum InFlightBound {
    /// Peak may never exceed this many items. Only meaningful when the
    /// run spans many scheduler timeslices: the peak is retire-rate ×
    /// the longest epoch stall, and a stall is one descheduled pinned
    /// thread's timeslice-out.
    Absolute(u64),
    /// Peak must stay at or below `num/den` of total retired. The right
    /// check for short runs on an oversubscribed box, where one
    /// scheduler stall can span most of the run and any absolute bound
    /// is a coin flip — a measurable dip below "everything" still proves
    /// collection ran *during* churn, which the old leak-forever shim
    /// (peak == retired, always) can never pass.
    FractionOfRetired(u64, u64),
}

fn churn_battery(threads: u64, rounds: u64, keyspace: u64, bound: InFlightBound) {
    reclamation_flush();
    let before = reclamation_stats();

    let fam = DropFamily::new();
    let map: Arc<ConcurrentSkipListMap<i64, DropCounter>> = Arc::new(ConcurrentSkipListMap::new());
    let barrier = Arc::new(Barrier::new(threads as usize));
    let done = Arc::new(AtomicBool::new(false));
    let max_in_flight = Arc::new(AtomicU64::new(0));

    let monitor = {
        let done = Arc::clone(&done);
        let max_in_flight = Arc::clone(&max_in_flight);
        std::thread::spawn(move || {
            while !done.load(SeqCst) {
                let in_flight = reclamation_stats().in_flight();
                max_in_flight.fetch_max(in_flight, SeqCst);
                std::thread::yield_now();
            }
        })
    };

    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let map = Arc::clone(&map);
            let fam = Arc::clone(&fam);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                churn(&map, &fam, (t + 1) * 0x9e37_79b9, rounds, keyspace);
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    done.store(true, SeqCst);
    monitor.join().unwrap();

    let stats = reclamation_flush();
    let retired = stats.retired - before.retired;
    let reclaimed = stats.reclaimed - before.reclaimed;
    let peak = max_in_flight.load(SeqCst);
    assert!(reclaimed > 0, "churn must actually reclaim garbage");
    assert_eq!(stats.in_flight(), 0, "flush at quiescence frees everything");
    assert_eq!(retired, reclaimed, "every retirement eventually freed");
    let limit = match bound {
        InFlightBound::Absolute(n) => {
            assert!(
                retired > n,
                "churn too small to make the bound meaningful: retired {retired} <= bound {n}"
            );
            n
        }
        InFlightBound::FractionOfRetired(num, den) => retired * num / den,
    };
    assert!(
        peak <= limit,
        "in-flight garbage must stay bounded during churn (the old shim grew \
         monotonically): peak {peak} > bound {limit} (retired {retired})"
    );

    // Live drop-tracked allocations return to the container's logical size.
    assert_eq!(fam.live(), map.len() as i64);

    // Structural sanity after the storm: sorted, duplicate-free, len-exact.
    let mut prev = i64::MIN;
    let mut count = 0usize;
    map.scan(&mut |k, _| {
        assert!(*k > prev);
        prev = *k;
        count += 1;
        ControlFlow::Continue(())
    });
    assert_eq!(count, map.len());

    drop(map);
    assert_eq!(fam.live(), 0, "teardown frees the remaining entries");
    assert_eq!(fam.created(), fam.dropped());
}

#[test]
fn churn_reclaims_and_bounds_in_flight() {
    let _serial = serialize();
    // This quick battery finishes within a few scheduler timeslices, so
    // an absolute peak bound is scheduling luck (observed peaks on a
    // loaded 1-CPU box range ~45–80% of retired); the fractional bound
    // still separates real reclamation from the leak-forever shim, and
    // the `--ignored` soak asserts the tight absolute bound on a run
    // long enough to amortize stalls.
    churn_battery(4, 24_000, 48, InFlightBound::FractionOfRetired(7, 8));
}

#[test]
#[ignore = "long-running reclamation soak; run with `cargo test -- --ignored`"]
fn soak_sustained_churn_memory_stays_bounded() {
    let _serial = serialize();
    // ~2.4M churn ops retiring ~1.6M nodes/values. Under the old leaking
    // shim every one of those stayed in flight; with real reclamation the
    // peak is bounded by retire-rate × the longest epoch stall. The
    // stall is scheduling, not protocol: on an oversubscribed box a
    // descheduled pinned thread freezes the epoch for a timeslice while
    // the others keep retiring at release-build speed (observed peaks
    // ~30k), hence a bound well above that but still ~8% of total.
    churn_battery(8, 300_000, 64, InFlightBound::Absolute(131_072));
}

// ---------------------------------------------------------------------------
// Contention: the retry paths must escalate through `locks::backoff`
// instead of spinning, so oversubscription still makes progress.
// ---------------------------------------------------------------------------

#[test]
fn forward_progress_under_oversubscription() {
    let _serial = serialize();
    with_watchdog(120, || {
        // Far more threads than cores, all fighting over four keys: the
        // mid-removal and mid-publication waits in insert/remove park the
        // waiter (spin → yield → jittered sleep), so the thread being
        // waited on gets scheduled and every worker finishes.
        let map: Arc<ConcurrentSkipListMap<i64, i64>> = Arc::new(ConcurrentSkipListMap::new());
        let threads = 16u64;
        let barrier = Arc::new(Barrier::new(threads as usize));
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let map = Arc::clone(&map);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    let mut x = t + 1;
                    for i in 0..400 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = (x % 4) as i64;
                        if i % 2 == 0 {
                            map.write(&k, Some(t as i64));
                        } else {
                            map.write(&k, None);
                        }
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert!(map.len() <= 4);
    });
    reclamation_flush();
}

// ---------------------------------------------------------------------------
// Proptest: random pin/defer/flush interleavings against a reference model
// of the epoch state machine.
// ---------------------------------------------------------------------------

/// Commands a model-driven worker thread executes synchronously.
enum Cmd {
    Pin,
    Unpin,
    Defer(DropCounter),
    Flush,
    Quit,
}

struct Worker {
    tx: mpsc::Sender<Cmd>,
    ack: mpsc::Receiver<()>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Worker {
    fn spawn() -> Worker {
        let (tx, rx) = mpsc::channel::<Cmd>();
        let (ack_tx, ack_rx) = mpsc::channel::<()>();
        let handle = std::thread::spawn(move || {
            let mut guards: Vec<epoch::Guard> = Vec::new();
            for cmd in rx {
                match cmd {
                    Cmd::Pin => guards.push(epoch::pin()),
                    Cmd::Unpin => {
                        guards.pop();
                    }
                    Cmd::Defer(item) => {
                        let g = epoch::pin();
                        let shared = Owned::new(item).into_shared(&g);
                        // SAFETY: freshly allocated and immediately
                        // relinquished; nobody else ever saw the pointer.
                        unsafe { g.defer_destroy(shared) };
                    }
                    Cmd::Flush => {
                        reclamation_flush();
                    }
                    Cmd::Quit => break,
                }
                let _ = ack_tx.send(());
            }
            // Remaining guards drop here; thread exit seals the bag.
            drop(guards);
        });
        Worker {
            tx,
            ack: ack_rx,
            handle: Some(handle),
        }
    }

    fn run(&self, cmd: Cmd) {
        self.tx.send(cmd).expect("worker alive");
        self.ack
            .recv_timeout(Duration::from_secs(30))
            .expect("worker acked");
    }

    fn quit(mut self) {
        let _ = self.tx.send(Cmd::Quit);
        if let Some(h) = self.handle.take() {
            h.join().unwrap();
        }
    }
}

/// Reference model: an item retired while a set of guards is pinned may
/// not be freed until every one of those guards has unpinned. (The epoch
/// scheme may legitimately free *later* than the model's lower bound —
/// the model only checks safety, not promptness.)
#[derive(Default)]
struct EpochModel {
    /// Per worker: stack of live guard ids.
    pinned: Vec<Vec<u64>>,
    next_guard: u64,
    /// Retired items: drop-tracked handle + the guards that block freeing.
    items: Vec<(Arc<DropFamily>, BTreeSet<u64>)>,
}

impl EpochModel {
    fn new(workers: usize) -> Self {
        EpochModel {
            pinned: vec![Vec::new(); workers],
            ..Default::default()
        }
    }

    fn pin(&mut self, w: usize) {
        let id = self.next_guard;
        self.next_guard += 1;
        self.pinned[w].push(id);
    }

    fn unpin(&mut self, w: usize) {
        if let Some(id) = self.pinned[w].pop() {
            for (_, blockers) in &mut self.items {
                blockers.remove(&id);
            }
        }
    }

    fn defer(&mut self, fam: Arc<DropFamily>) {
        let blockers: BTreeSet<u64> = self.pinned.iter().flatten().copied().collect();
        self.items.push((fam, blockers));
    }

    /// Safety invariant: every item some pre-retirement guard still pins
    /// must not have been dropped.
    fn check(&self) -> Result<(), String> {
        for (i, (fam, blockers)) in self.items.iter().enumerate() {
            if !blockers.is_empty() && fam.live() != 1 {
                return Err(format!(
                    "item {i} freed while {} pre-retirement guard(s) still pinned",
                    blockers.len()
                ));
            }
        }
        Ok(())
    }
}

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn proptest_pin_defer_flush_against_model(
        ops in proptest::collection::vec((0usize..3, 0u8..8), 1..48)
    ) {
        let _serial = serialize();
        reclamation_flush();
        let workers: Vec<Worker> = (0..3).map(|_| Worker::spawn()).collect();
        let mut model = EpochModel::new(workers.len());

        for &(w, kind) in &ops {
            match kind {
                // Weighted: defer is the interesting operation.
                0 | 1 => {
                    workers[w].run(Cmd::Pin);
                    model.pin(w);
                }
                2 | 3 => {
                    workers[w].run(Cmd::Unpin);
                    model.unpin(w);
                }
                4..=6 => {
                    let fam = DropFamily::new();
                    workers[w].run(Cmd::Defer(fam.make(0)));
                    model.defer(fam);
                }
                _ => {
                    workers[w].run(Cmd::Flush);
                }
            }
            prop_assert!(model.check().is_ok(), "{:?}", model.check());
        }

        // Drain: unpin everything, let the workers exit (sealing their
        // bags), then flush — every retired item must now be freed.
        for (w, worker) in workers.iter().enumerate() {
            while !model.pinned[w].is_empty() {
                worker.run(Cmd::Unpin);
                model.unpin(w);
            }
        }
        for worker in workers {
            worker.quit();
        }
        let stats = reclamation_flush();
        prop_assert_eq!(stats.in_flight(), 0);
        for (i, (fam, _)) in model.items.iter().enumerate() {
            prop_assert_eq!(fam.live(), 0, "item {} must be freed at quiescence", i);
            prop_assert_eq!(fam.created(), fam.dropped());
        }
    }
}
