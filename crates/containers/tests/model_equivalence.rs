//! Property tests: every container implementation is observationally
//! equivalent to `std::collections::BTreeMap` under arbitrary single-threaded
//! operation sequences, and sorted containers scan in order.

use std::collections::BTreeMap;
use std::ops::ControlFlow;

use proptest::prelude::*;
use relc_containers::{Container, ContainerKind};

#[derive(Debug, Clone)]
enum Op {
    Write(i64, Option<i64>),
    Move(i64, i64, i64),
    Extend(Vec<(i64, i64)>),
    Lookup(i64),
    Scan,
    Len,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..40, proptest::option::of(any::<i64>())).prop_map(|(k, v)| Op::Write(k, v)),
        (0i64..40, 0i64..40, any::<i64>()).prop_map(|(o, n, v)| Op::Move(o, n, v)),
        proptest::collection::vec((0i64..40, any::<i64>()), 0..12).prop_map(Op::Extend),
        (0i64..40).prop_map(Op::Lookup),
        Just(Op::Scan),
        Just(Op::Len),
    ]
}

fn check_model(kind: ContainerKind, ops: &[Op]) {
    let container: Box<dyn Container<i64, i64>> = kind.instantiate();
    let mut model: BTreeMap<i64, i64> = BTreeMap::new();
    for op in ops {
        match op {
            Op::Write(k, v) => {
                let expected = match v {
                    Some(v) => model.insert(*k, *v),
                    None => model.remove(k),
                };
                let got = container.write(k, *v);
                assert_eq!(got, expected, "{kind}: write({k}, {v:?})");
            }
            Op::Move(old_key, new_key, v) => {
                let expected = match model.remove(old_key) {
                    Some(old) => {
                        model.insert(*new_key, *v);
                        Some(old)
                    }
                    None => None,
                };
                let got = container.update_entry(old_key, new_key, *v);
                assert_eq!(
                    got, expected,
                    "{kind}: update_entry({old_key}, {new_key}, {v})"
                );
            }
            Op::Extend(entries) => {
                let mut expected = 0usize;
                for (k, v) in entries {
                    if model.insert(*k, *v).is_some() {
                        expected += 1;
                    }
                }
                let got = container.extend_entries(entries.clone());
                assert_eq!(got, expected, "{kind}: extend_entries({entries:?})");
            }
            Op::Lookup(k) => {
                assert_eq!(
                    container.lookup(k),
                    model.get(k).copied(),
                    "{kind}: lookup({k})"
                );
            }
            Op::Scan => {
                let mut got: Vec<(i64, i64)> = Vec::new();
                container.scan(&mut |k, v| {
                    got.push((*k, *v));
                    ControlFlow::Continue(())
                });
                if container.props().sorted_scan {
                    let expected: Vec<(i64, i64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
                    assert_eq!(got, expected, "{kind}: sorted scan");
                } else {
                    got.sort_unstable();
                    let expected: Vec<(i64, i64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
                    assert_eq!(got, expected, "{kind}: unsorted scan (as set)");
                }
            }
            Op::Len => {
                assert_eq!(container.len(), model.len(), "{kind}: len");
                assert_eq!(container.is_empty(), model.is_empty(), "{kind}: is_empty");
            }
        }
    }
}

macro_rules! model_test {
    ($name:ident, $kind:expr) => {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn $name(ops in proptest::collection::vec(op_strategy(), 1..200)) {
                check_model($kind, &ops);
            }
        }
    };
}

model_test!(hash_map_matches_model, ContainerKind::HashMap);
model_test!(tree_map_matches_model, ContainerKind::TreeMap);
model_test!(
    concurrent_hash_map_matches_model,
    ContainerKind::ConcurrentHashMap
);
model_test!(
    skip_list_matches_model,
    ContainerKind::ConcurrentSkipListMap
);
model_test!(cow_list_matches_model, ContainerKind::CopyOnWriteArrayList);
model_test!(splay_tree_matches_model, ContainerKind::SplayTreeMap);

// The singleton cell intentionally deviates from map semantics (capacity 1),
// so it gets a dedicated model: a BTreeMap truncated to the latest entry.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn singleton_holds_last_entry(ops in proptest::collection::vec(
        (0i64..4, proptest::option::of(any::<i64>())), 1..50))
    {
        let c: Box<dyn Container<i64, i64>> = ContainerKind::Singleton.instantiate();
        let mut model: Option<(i64, i64)> = None;
        for (k, v) in ops {
            match v {
                Some(v) => {
                    c.write(&k, Some(v));
                    model = Some((k, v));
                }
                None => {
                    c.write(&k, None);
                    if model.map(|(mk, _)| mk == k).unwrap_or(false) {
                        model = None;
                    }
                }
            }
            match model {
                Some((mk, mv)) => {
                    prop_assert_eq!(c.lookup(&mk), Some(mv));
                    prop_assert_eq!(c.len(), 1);
                }
                None => prop_assert_eq!(c.len(), 0),
            }
        }
    }
}

#[test]
fn update_entry_semantics_on_every_kind() {
    for kind in ContainerKind::ALL {
        let c: Box<dyn Container<i64, i64>> = kind.instantiate();
        // Miss: the container stays unchanged and the value is dropped.
        assert_eq!(c.update_entry(&1, &2, 99), None, "{kind}: miss");
        assert!(c.is_empty(), "{kind}: miss leaves it empty");
        // Hit with a key move.
        c.write(&1, Some(10));
        assert_eq!(c.update_entry(&1, &2, 20), Some(10), "{kind}: move");
        assert_eq!(c.lookup(&1), None, "{kind}: old key gone");
        assert_eq!(c.lookup(&2), Some(20), "{kind}: new key present");
        assert_eq!(c.len(), 1, "{kind}: a move preserves len");
        // Hit in place (old == new): the value is replaced.
        assert_eq!(c.update_entry(&2, &2, 30), Some(20), "{kind}: in place");
        assert_eq!(c.lookup(&2), Some(30), "{kind}: value rewritten");
        assert_eq!(c.len(), 1, "{kind}");
    }
}

#[test]
fn extend_entries_semantics_on_every_kind() {
    // Sorted, reverse-sorted, and overlapping batches must all leave every
    // map-like container equivalent to the BTreeMap model (the fused
    // implementations re-order work internally — shard grouping, single
    // array copy — but the observable result is the per-entry fold).
    let sorted: Vec<(i64, i64)> = (0..32).map(|k| (k, k * 10)).collect();
    let reverse: Vec<(i64, i64)> = (0..32).rev().map(|k| (k, k * 100)).collect();
    // Overlap half the existing keys, plus an in-batch duplicate (the later
    // entry wins and counts as a displacement of the earlier one).
    let mut overlapping: Vec<(i64, i64)> = (16..48).map(|k| (k, k + 1)).collect();
    overlapping.push((47, -1));
    for kind in ContainerKind::ALL {
        if kind == ContainerKind::Singleton {
            continue; // capacity-one cell: dedicated check below
        }
        let c: Box<dyn Container<i64, i64>> = kind.instantiate();
        let mut model: BTreeMap<i64, i64> = BTreeMap::new();
        for batch in [&sorted, &reverse, &overlapping] {
            let mut expected = 0usize;
            for (k, v) in batch.iter() {
                if model.insert(*k, *v).is_some() {
                    expected += 1;
                }
            }
            assert_eq!(
                c.extend_entries(batch.clone()),
                expected,
                "{kind}: displaced count"
            );
        }
        assert_eq!(c.len(), model.len(), "{kind}: len after batches");
        let mut got: Vec<(i64, i64)> = Vec::new();
        c.scan(&mut |k, v| {
            got.push((*k, *v));
            ControlFlow::Continue(())
        });
        got.sort_unstable();
        let want: Vec<(i64, i64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(got, want, "{kind}: contents after batches");
    }
    // The singleton cell keeps only the last entry of the batch, exactly as
    // the default per-entry loop would.
    let c: Box<dyn Container<i64, i64>> = ContainerKind::Singleton.instantiate();
    assert_eq!(c.extend_entries(vec![(1, 10), (2, 20), (3, 30)]), 2);
    assert_eq!(c.lookup(&3), Some(30));
    assert_eq!(c.len(), 1);
    assert_eq!(c.extend_entries(Vec::new()), 0);
    assert_eq!(c.lookup(&3), Some(30));
}

#[test]
fn scan_break_is_honored_by_every_kind() {
    for kind in ContainerKind::ALL {
        let c: Box<dyn Container<i64, i64>> = kind.instantiate();
        for i in 0..20 {
            c.write(&i, Some(i));
        }
        let mut visits = 0;
        c.scan(&mut |_, _| {
            visits += 1;
            ControlFlow::Break(())
        });
        assert!(visits <= 1, "{kind}: break must stop the scan");
    }
}
