//! Atomic read-modify-write with multi-operation transactions — the thing
//! the single-shot API *cannot* express.
//!
//! A bank keeps accounts in a synthesized concurrent relation
//! `{key, value}` (key → balance). Transfers must move money atomically:
//! with only single-shot `insert`/`remove`/`query`, any two-step
//! read-then-write admits lost updates under concurrency. With
//! [`ConcurrentRelation::transaction`], the read, the debit, and the
//! credit share one two-phase lock scope — the whole closure restarts on
//! conflicts, so the invariant "total balance is constant" holds under
//! any interleaving.
//!
//! ```text
//! cargo run -p relc-integration --example bank_transfer
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use relc::decomp::library::kv;
use relc::placement::LockPlacement;
use relc::ConcurrentRelation;
use relc_containers::ContainerKind;
use relc_spec::{RelationSchema, Tuple, Value};

const ACCOUNTS: i64 = 8;
const INITIAL: i64 = 1_000;
const THREADS: usize = 8;
const TRANSFERS: usize = 2_000;

fn account(schema: &RelationSchema, id: i64) -> Tuple {
    schema.tuple(&[("key", Value::from(id))]).unwrap()
}

fn balance(schema: &RelationSchema, v: i64) -> Tuple {
    schema.tuple(&[("value", Value::from(v))]).unwrap()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Accounts as a key→value relation, striped across 64 root locks.
    let decomp = kv(ContainerKind::ConcurrentHashMap);
    let placement = LockPlacement::striped_root(&decomp, 64)?;
    let bank = Arc::new(ConcurrentRelation::new(decomp.clone(), placement)?);
    let schema = decomp.schema().clone();
    let value_col = schema.column("value")?;

    for id in 0..ACCOUNTS {
        bank.insert(&account(&schema, id), &balance(&schema, INITIAL))?;
    }
    println!(
        "opened {ACCOUNTS} accounts with {INITIAL} each (total {})",
        ACCOUNTS * INITIAL
    );

    // Hammer the bank with concurrent transfers between random accounts.
    let rejected = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(THREADS));
    let workers: Vec<_> = (0..THREADS as u64)
        .map(|tid| {
            let bank = Arc::clone(&bank);
            let schema = schema.clone();
            let barrier = Arc::clone(&barrier);
            let rejected = Arc::clone(&rejected);
            std::thread::spawn(move || {
                let mut x = (tid + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                let mut next = move || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                };
                barrier.wait();
                for _ in 0..TRANSFERS {
                    let from = (next() % ACCOUNTS as u64) as i64;
                    let to = (next() % ACCOUNTS as u64) as i64;
                    if from == to {
                        continue;
                    }
                    let amount = (next() % 50) as i64;
                    // The transfer: read both balances, debit, credit —
                    // one serializable step. The reads take shared locks
                    // that the updates upgrade; on any conflict the whole
                    // closure re-runs, so it computes everything from
                    // values read *inside* the transaction.
                    let value_cols = schema.column_set(&["value"]).unwrap();
                    let result = bank.transaction(|tx| {
                        let from_balance = tx.query(&account(&schema, from), value_cols)?[0]
                            .get(value_col)
                            .and_then(Value::as_int)
                            .unwrap();
                        if from_balance < amount {
                            return Err(tx.abort("insufficient funds"));
                        }
                        let to_balance = tx.query(&account(&schema, to), value_cols)?[0]
                            .get(value_col)
                            .and_then(Value::as_int)
                            .unwrap();
                        tx.update(
                            &account(&schema, from),
                            &balance(&schema, from_balance - amount),
                        )?;
                        tx.update(
                            &account(&schema, to),
                            &balance(&schema, to_balance + amount),
                        )?;
                        Ok(())
                    });
                    match result {
                        Ok(()) => {}
                        Err(relc::CoreError::TransactionAborted(_)) => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("transfer failed: {e}"),
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker panicked");
    }

    // The books must balance exactly, and no account may be overdrawn.
    let mut total = 0;
    for id in 0..ACCOUNTS {
        let row = bank.query(&account(&schema, id), schema.column_set(&["value"])?)?;
        let b = row[0].get(value_col).and_then(Value::as_int).unwrap();
        assert!(b >= 0, "account {id} overdrawn: {b}");
        println!("account {id}: {b}");
        total += b;
    }
    assert_eq!(total, ACCOUNTS * INITIAL, "money was created or destroyed");
    println!(
        "total {total} — conserved; {} transfers rejected for insufficient funds",
        rejected.load(Ordering::Relaxed)
    );
    println!("lock traffic: {}", bank.lock_stats());
    Ok(())
}
