//! Quickstart: synthesize a concurrent weighted digraph from a relational
//! specification, pick a representation, and use it from several threads.
//!
//! ```text
//! cargo run -p relc-integration --example quickstart
//! ```

use std::sync::Arc;

use relc::decomp::library::split;
use relc::placement::LockPlacement;
use relc::ConcurrentRelation;
use relc_containers::ContainerKind;
use relc_spec::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The relational specification: columns {src, dst, weight} with the
    //    functional dependency src, dst → weight. The "split" decomposition
    //    (Fig. 3(b)) indexes the relation by src on one branch and by dst on
    //    the other, so both successor and predecessor queries are fast.
    let decomp = split(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
    println!("decomposition: {decomp}");

    // 2. A lock placement: stripe the root edges across 1024 locks (§4.4);
    //    the per-node HashMaps underneath are serialized by their source
    //    node's lock.
    let placement = LockPlacement::striped_root(&decomp, 1024)?;
    println!("placement:     {placement}\n");

    // 3. Synthesize the relation. All operations are linearizable and
    //    deadlock-free by construction.
    let graph = Arc::new(ConcurrentRelation::new(decomp.clone(), placement)?);
    let schema = graph.schema().clone();

    // 4. Concurrent inserts: put-if-absent over the (src, dst) key.
    let threads: Vec<_> = (0..4i64)
        .map(|t| {
            let graph = graph.clone();
            std::thread::spawn(move || {
                let schema = graph.schema().clone();
                for i in 0..1000i64 {
                    let s = schema
                        .tuple(&[
                            ("src", Value::from((t * 31 + i) % 64)),
                            ("dst", Value::from(i % 64)),
                        ])
                        .expect("schema columns");
                    let w = schema
                        .tuple(&[("weight", Value::from(i))])
                        .expect("schema columns");
                    let _ = graph.insert(&s, &w).expect("plannable insert");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("worker");
    }
    println!("inserted {} distinct edges from 4 threads", graph.len());

    // 5. Query both directions.
    let successors = graph.query(
        &schema.tuple(&[("src", Value::from(1))])?,
        schema.column_set(&["dst", "weight"])?,
    )?;
    let predecessors = graph.query(
        &schema.tuple(&[("dst", Value::from(1))])?,
        schema.column_set(&["src", "weight"])?,
    )?;
    println!(
        "node 1: {} successors, {} predecessors",
        successors.len(),
        predecessors.len()
    );

    // 6. Structural self-check (branch agreement, sharing, cleanup).
    graph.verify().map_err(|e| format!("integrity: {e}"))?;
    println!("instance verified: both branches agree, no leaked substructures");

    // 7. Lock telemetry.
    println!("lock stats: {}", graph.lock_stats());
    Ok(())
}
