//! A follower graph ("who follows whom, since when") — the workload the
//! paper's introduction motivates: concurrent high-level operations that
//! each touch *both* directions of the graph, which is exactly where
//! hand-rolled compositions of concurrent containers go wrong.
//!
//! The relation is `{src, dst, weight}` where `weight` stores the
//! follow-timestamp; `follow` is put-if-absent, `unfollow` removes by key,
//! and `mutuals(a)` composes a successor query with per-edge lookups —
//! all linearizable by construction.
//!
//! ```text
//! cargo run -p relc-integration --example social_graph
//! ```

use std::sync::Arc;

use relc::decomp::library::diamond;
use relc::placement::LockPlacement;
use relc::ConcurrentRelation;
use relc_containers::ContainerKind;
use relc_spec::Value;

struct SocialGraph {
    rel: Arc<ConcurrentRelation>,
}

impl SocialGraph {
    fn new() -> Result<Self, Box<dyn std::error::Error>> {
        // Diamond decomposition: follower and following indexes share the
        // (src, dst) node, so the timestamp is stored once (Fig. 3(c)).
        let d = diamond(ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap);
        let p = LockPlacement::striped_root(&d, 256)?;
        Ok(SocialGraph {
            rel: Arc::new(ConcurrentRelation::new(d, p)?),
        })
    }

    fn follow(&self, who: i64, whom: i64, at: i64) -> bool {
        let s = self
            .rel
            .schema()
            .tuple(&[("src", Value::from(who)), ("dst", Value::from(whom))])
            .expect("schema");
        let t = self
            .rel
            .schema()
            .tuple(&[("weight", Value::from(at))])
            .expect("schema");
        self.rel.insert(&s, &t).expect("plannable")
    }

    fn unfollow(&self, who: i64, whom: i64) -> bool {
        let s = self
            .rel
            .schema()
            .tuple(&[("src", Value::from(who)), ("dst", Value::from(whom))])
            .expect("schema");
        self.rel.remove(&s).expect("plannable") > 0
    }

    fn following(&self, who: i64) -> Vec<i64> {
        let pat = self
            .rel
            .schema()
            .tuple(&[("src", Value::from(who))])
            .expect("schema");
        let cols = self.rel.schema().column_set(&["dst"]).expect("schema");
        let dst = self.rel.schema().column("dst").expect("schema");
        self.rel
            .query(&pat, cols)
            .expect("plannable")
            .into_iter()
            .map(|t| t.get(dst).and_then(Value::as_int).expect("dst"))
            .collect()
    }

    fn followers(&self, whom: i64) -> Vec<i64> {
        let pat = self
            .rel
            .schema()
            .tuple(&[("dst", Value::from(whom))])
            .expect("schema");
        let cols = self.rel.schema().column_set(&["src"]).expect("schema");
        let src = self.rel.schema().column("src").expect("schema");
        self.rel
            .query(&pat, cols)
            .expect("plannable")
            .into_iter()
            .map(|t| t.get(src).and_then(Value::as_int).expect("src"))
            .collect()
    }

    fn mutuals(&self, who: i64) -> Vec<i64> {
        let follows: std::collections::BTreeSet<i64> = self.following(who).into_iter().collect();
        self.followers(who)
            .into_iter()
            .filter(|f| follows.contains(f))
            .collect()
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = Arc::new(SocialGraph::new()?);

    // 8 threads of follow/unfollow churn over 64 users.
    let workers: Vec<_> = (0..8u64)
        .map(|tid| {
            let g = g.clone();
            std::thread::spawn(move || {
                let mut x = (tid + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                let mut next = move || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                };
                for i in 0..2_000i64 {
                    let a = (next() % 64) as i64;
                    let b = (next() % 64) as i64;
                    if a == b {
                        continue;
                    }
                    match next() % 10 {
                        0..=6 => {
                            g.follow(a, b, i);
                        }
                        7 => {
                            g.unfollow(a, b);
                        }
                        8 => {
                            let _ = g.followers(b);
                        }
                        _ => {
                            let _ = g.mutuals(a);
                        }
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker");
    }

    println!("follow graph: {} edges", g.rel.len());
    let (mut max_followers, mut who) = (0, 0);
    for u in 0..64 {
        let n = g.followers(u).len();
        if n > max_followers {
            max_followers = n;
            who = u;
        }
    }
    println!("most followed: user {who} with {max_followers} followers");
    println!("user {who} mutuals: {:?}", g.mutuals(who));
    g.rel.verify().map_err(|e| format!("integrity: {e}"))?;
    println!("graph verified; lock stats: {}", g.rel.lock_stats());
    Ok(())
}
