//! Autotuning demo (§6.1): enumerate the representation space for the graph
//! relation and let the autotuner pick the best representation for two very
//! different workloads — showing that "the best data representation varies
//! with the workload".
//!
//! ```text
//! cargo run -p relc-integration --example graph_autotune --release
//! ```

use relc_autotune::candidates::enumerate;
use relc_autotune::tuner::autotune;
use relc_autotune::workload::{KeyDistribution, OpMix, WorkloadConfig};

fn main() {
    let space = enumerate(&[1, 64]);
    println!(
        "candidate space: {} (structures × containers × placements × stripes)\n",
        space.len()
    );

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let scenarios = [
        ("successor-heavy service", OpMix::new(70, 0, 20, 10)),
        ("bidirectional analytics", OpMix::new(45, 45, 9, 1)),
        ("ingest pipeline", OpMix::new(0, 0, 50, 50)),
    ];

    for (label, mix) in scenarios {
        let cfg = WorkloadConfig {
            mix,
            threads,
            ops_per_thread: 4_000,
            key_range: 128,
            distribution: KeyDistribution::Uniform,
            seed: 0xcafe,
        };
        let report = autotune(&space, &cfg);
        println!("=== {label} ({})", mix.label());
        println!(
            "    {} feasible candidates, {} infeasible under this mix",
            report.ranked.len(),
            report.infeasible.len()
        );
        for entry in report.ranked.iter().take(3) {
            println!("    {entry}");
        }
        println!("    winner: {}\n", report.best().candidate.name());
    }
}
