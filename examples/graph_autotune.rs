//! Autotuning demo (§6.1, online): calibrate a cost model over a slice of
//! the representation space, then ask it to *advise* on observed workloads
//! without re-measuring — showing that "the best data representation
//! varies with the workload", and that a persisted model can answer for
//! traffic it has already seen.
//!
//! ```text
//! cargo run -p relc-integration --example graph_autotune --release
//! ```

use relc_autotune::calibrate::{CalibrationConfig, OpMix, TxnMix};
use relc_autotune::candidates::enumerate;
use relc_autotune::cost::{CostModel, ObservedSignals};

fn main() {
    // A compact slice of the space: stripe factor 8 keeps the demo quick
    // while still exercising coarse/fine/striped/speculative families.
    let space: Vec<_> = enumerate(&[8]).into_iter().take(12).collect();
    println!("calibrating {} candidates...\n", space.len());

    let cfg = CalibrationConfig {
        threads: std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(4),
        ops_per_thread: 4_000,
        ..Default::default()
    };
    let mixes = [
        TxnMix::ReadHeavy,
        TxnMix::TxnTransfer,
        TxnMix::Graph(OpMix::new(70, 0, 20, 10)),
    ];
    let model = CostModel::calibrate(&space, &mixes, &cfg);
    println!(
        "model: {} candidates × {} mixes calibrated\n",
        model.entries.len(),
        model.mixes.len()
    );

    // Observed traffic shapes (normally StatsSnapshot deltas from a live
    // relation; synthesized here).
    let scenarios = [
        (
            "read-dominant service",
            ObservedSignals {
                reads: 9_500,
                writes: 500,
                txns: 0,
                restart_rate: 0.0,
                contention: 0.05,
                snapshot_read_rate: 0.9,
            },
        ),
        (
            "transfer pipeline",
            ObservedSignals {
                reads: 0,
                writes: 0,
                txns: 10_000,
                restart_rate: 0.1,
                contention: 0.3,
                snapshot_read_rate: 0.0,
            },
        ),
    ];

    for (label, obs) in scenarios {
        println!("=== {label}");
        match model.advise(&obs) {
            Some(advice) => {
                println!(
                    "    matched mix `{}` (distance {:.3}), {} ranked candidates",
                    advice.matched_mix,
                    advice.distance,
                    advice.ranked.len()
                );
                for r in advice.ranked.iter().take(3) {
                    println!(
                        "    {:>12.0} ops/s  p99 {:>8.1}us  {}",
                        r.features.ops_per_sec,
                        r.features.p99_us,
                        r.candidate.name()
                    );
                }
                println!("    winner: {}\n", advice.best().candidate.name());
            }
            None => println!("    model does not cover this mix; re-calibration needed\n"),
        }
    }

    // The model round-trips through JSON for persistence across runs.
    let json = model.to_json();
    let reloaded = CostModel::from_json(&json).expect("model round-trips");
    println!(
        "persisted model: {} bytes of JSON, {} entries after reload",
        json.len(),
        reloaded.entries.len()
    );
}
