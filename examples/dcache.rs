//! The Fig. 2 filesystem directory-entry cache: a relation
//! `{parent, name, child}` with `parent, name → child`, decomposed as a
//! per-directory tree plus a global (parent, name) hash index sharing the
//! target node — the dcache shape from the Linux kernel.
//!
//! Simulates concurrent `create`, `unlink`, `lookup`, and `readdir`
//! traffic, then prints the directory tree.
//!
//! ```text
//! cargo run -p relc-integration --example dcache
//! ```

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use relc::decomp::library::dcache;
use relc::placement::LockPlacement;
use relc::ConcurrentRelation;
use relc_spec::Value;

struct Dcache {
    rel: Arc<ConcurrentRelation>,
    next_inode: AtomicI64,
}

impl Dcache {
    fn new() -> Result<Self, Box<dyn std::error::Error>> {
        let d = dcache();
        let p = LockPlacement::fine(&d)?;
        Ok(Dcache {
            rel: Arc::new(ConcurrentRelation::new(d, p)?),
            next_inode: AtomicI64::new(2), // inode 1 is the root
        })
    }

    /// `create(parent, name)`: allocates an inode and links it, failing if
    /// the name already exists (put-if-absent — atomically, even under
    /// concurrent creates of the same name).
    fn create(&self, parent: i64, name: &str) -> Option<i64> {
        let inode = self.next_inode.fetch_add(1, Ordering::Relaxed);
        let s = self
            .rel
            .schema()
            .tuple(&[("parent", Value::from(parent)), ("name", Value::from(name))])
            .expect("schema");
        let t = self
            .rel
            .schema()
            .tuple(&[("child", Value::from(inode))])
            .expect("schema");
        self.rel.insert(&s, &t).expect("plannable").then_some(inode)
    }

    /// `lookup(parent, name)`: resolves through the global hash index.
    fn lookup(&self, parent: i64, name: &str) -> Option<i64> {
        let s = self
            .rel
            .schema()
            .tuple(&[("parent", Value::from(parent)), ("name", Value::from(name))])
            .expect("schema");
        let cols = self.rel.schema().column_set(&["child"]).expect("schema");
        let child_col = self.rel.schema().column("child").expect("schema");
        self.rel
            .query(&s, cols)
            .expect("plannable")
            .first()
            .and_then(|t| t.get(child_col).and_then(Value::as_int))
    }

    /// `readdir(parent)`: lists (name, child) pairs via the tree branch.
    fn readdir(&self, parent: i64) -> Vec<(String, i64)> {
        let s = self
            .rel
            .schema()
            .tuple(&[("parent", Value::from(parent))])
            .expect("schema");
        let cols = self
            .rel
            .schema()
            .column_set(&["name", "child"])
            .expect("schema");
        let name_col = self.rel.schema().column("name").expect("schema");
        let child_col = self.rel.schema().column("child").expect("schema");
        self.rel
            .query(&s, cols)
            .expect("plannable")
            .into_iter()
            .map(|t| {
                (
                    t.get(name_col)
                        .and_then(Value::as_str)
                        .expect("name")
                        .to_owned(),
                    t.get(child_col).and_then(Value::as_int).expect("child"),
                )
            })
            .collect()
    }

    /// `unlink(parent, name)`.
    fn unlink(&self, parent: i64, name: &str) -> bool {
        let s = self
            .rel
            .schema()
            .tuple(&[("parent", Value::from(parent)), ("name", Value::from(name))])
            .expect("schema");
        self.rel.remove(&s).expect("plannable") > 0
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fs = Arc::new(Dcache::new()?);

    // Concurrent workload: 4 threads populate /srv-<t>/ with files, racing
    // on a shared directory name to show atomic create.
    let root_dirs: Vec<i64> = (0..4)
        .map(|t| fs.create(1, &format!("srv-{t}")).expect("fresh names"))
        .collect();
    let workers: Vec<_> = (0..4usize)
        .map(|t| {
            let fs = fs.clone();
            let dir = root_dirs[t];
            std::thread::spawn(move || {
                let mut created = 0;
                for i in 0..200 {
                    if fs.create(dir, &format!("file-{i}")).is_some() {
                        created += 1;
                    }
                    // Everyone also races to create the same shared name
                    // under the root; exactly one will ever win.
                    fs.create(1, "shared.lock");
                    if i % 3 == 0 {
                        fs.unlink(dir, &format!("file-{}", i / 2));
                    }
                }
                created
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker");
    }

    println!("root listing:");
    let mut listing = fs.readdir(1);
    listing.sort();
    for (name, inode) in &listing {
        println!(
            "  {name:<12} -> inode {inode} ({} entries)",
            fs.readdir(*inode).len()
        );
    }
    assert_eq!(
        listing.iter().filter(|(n, _)| n == "shared.lock").count(),
        1,
        "atomic create: exactly one shared.lock"
    );

    let resolved = fs.lookup(1, "srv-2").expect("exists");
    println!("lookup(/, srv-2) = inode {resolved}");

    fs.rel.verify().map_err(|e| format!("integrity: {e}"))?;
    println!("dcache instance verified ({} entries)", fs.rel.len());
    Ok(())
}
