//! A process-scheduler relation `{pid, cpu, state}` with `pid → cpu, state`
//! — the RelC lineage's original motivating example, here with concurrent
//! migrations and per-CPU run-queue scans.
//!
//! A custom decomposition indexes processes by pid (point lookups) and by
//! cpu (run-queue iteration), sharing the per-process leaf. A custom lock
//! placement stripes the pid index while keeping each per-CPU queue under
//! its own lock.
//!
//! ```text
//! cargo run -p relc-integration --example scheduler
//! ```

use std::sync::Arc;

use relc::placement::LockPlacement;
use relc::{ConcurrentRelation, Decomposition};
use relc_containers::ContainerKind;
use relc_spec::{RelationSchema, Value};

fn scheduler_decomposition() -> Arc<Decomposition> {
    let schema = RelationSchema::builder()
        .column("pid")
        .column("cpu")
        .column("state")
        .fd(&["pid"], &["cpu", "state"])
        .build();
    let mut b = Decomposition::builder(schema);
    let root = b.root();
    // pid index: pid → (cpu, state)
    let p1 = b.node("byPid");
    let p2 = b.node("pidCpu");
    let leaf1 = b.node("proc");
    // cpu index: cpu → pid → state
    let c1 = b.node("byCpu");
    let c2 = b.node("queued");
    b.edge(root, p1, &["pid"], ContainerKind::ConcurrentHashMap)
        .expect("cols");
    b.edge(p1, p2, &["cpu"], ContainerKind::Singleton)
        .expect("cols");
    b.edge(p2, leaf1, &["state"], ContainerKind::Singleton)
        .expect("cols");
    b.edge(root, c1, &["cpu"], ContainerKind::TreeMap)
        .expect("cols");
    b.edge(c1, c2, &["pid"], ContainerKind::TreeMap)
        .expect("cols");
    b.edge(c2, leaf1, &["state"], ContainerKind::Singleton)
        .expect("cols");
    b.build().expect("adequate")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let d = scheduler_decomposition();
    println!("decomposition: {d}");

    // Stripe the pid index; serialize each per-CPU queue on the root lock
    // of its branch (the cpu branch is coarse under ρ's stripe 0).
    let mut pb = LockPlacement::builder(d.clone());
    for (e, em) in d.edges() {
        if d.node(em.src).name == "byPid"
            || (d.node(em.src).name == "ρ" && {
                let dst = &d.node(em.dst).name;
                dst == "byPid"
            })
        {
            pb.place_striped(e, em.src, d.schema().column_set(&["pid"])?);
        } else if d.node(em.src).name == "pidCpu" {
            pb.place(e, em.src);
        } else {
            // cpu branch: everything under the root lock, stripe 0.
            pb.place(e, d.root());
        }
    }
    pb.stripes(d.root(), 64);
    pb.named("scheduler");
    let p = pb.build()?;
    println!("placement:     {p}\n");

    let sched = Arc::new(ConcurrentRelation::new(d.clone(), p)?);
    let schema = sched.schema().clone();

    // Spawn 1000 processes across 8 CPUs.
    for pid in 0..1000i64 {
        let s = schema.tuple(&[("pid", Value::from(pid))])?;
        let t = schema.tuple(&[
            ("cpu", Value::from(pid % 8)),
            ("state", Value::from("ready")),
        ])?;
        assert!(sched.insert(&s, &t)?);
    }

    // Concurrent migration storm: move processes between CPUs (remove +
    // reinsert under the pid key), while other threads scan run queues.
    let workers: Vec<_> = (0..8u64)
        .map(|tid| {
            let sched = sched.clone();
            std::thread::spawn(move || {
                let schema = sched.schema().clone();
                let mut migrations = 0usize;
                for i in 0..500i64 {
                    let pid = (tid as i64 * 131 + i * 7) % 1000;
                    let key = schema.tuple(&[("pid", Value::from(pid))]).expect("schema");
                    if tid % 2 == 0 {
                        // Migrate: atomically replace the (cpu, state) row.
                        if sched.remove(&key).expect("plannable") == 1 {
                            let t = schema
                                .tuple(&[
                                    ("cpu", Value::from((pid * 5 + i * 3 + 1) % 8)),
                                    ("state", Value::from("running")),
                                ])
                                .expect("schema");
                            assert!(sched.insert(&key, &t).expect("plannable"));
                            migrations += 1;
                        }
                    } else {
                        // Run-queue scan for this thread's CPU.
                        let pat = schema
                            .tuple(&[("cpu", Value::from(tid as i64 % 8))])
                            .expect("schema");
                        let cols = schema.column_set(&["pid", "state"]).expect("schema");
                        let _ = sched.query(&pat, cols).expect("plannable");
                    }
                }
                migrations
            })
        })
        .collect();
    let total_migrations: usize = workers.into_iter().map(|w| w.join().expect("worker")).sum();

    println!(
        "performed {total_migrations} migrations; {} processes live",
        sched.len()
    );
    for cpu in 0..8i64 {
        let pat = schema.tuple(&[("cpu", Value::from(cpu))])?;
        let q = sched.query(&pat, schema.column_set(&["pid"])?)?;
        println!("  cpu {cpu}: {} queued", q.len());
    }
    assert_eq!(sched.len(), 1000, "migrations preserve the process count");
    sched.verify().map_err(|e| format!("integrity: {e}"))?;
    println!("scheduler relation verified; stats: {}", sched.lock_stats());
    Ok(())
}
