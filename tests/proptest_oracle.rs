//! Property-based differential testing: arbitrary §2 operation sequences
//! applied to synthesized representations and the oracle must observe
//! identical results, maintain the FDs, and leave structurally perfect
//! instances — for every decomposition structure and placement family.

use std::sync::Arc;

use proptest::prelude::*;
use relc::decomp::library::{diamond, split, stick};
use relc::placement::LockPlacement;
use relc::{ConcurrentRelation, CoreError, Decomposition};
use relc_containers::ContainerKind;
use relc_spec::{OracleRelation, Tuple, Value};

#[derive(Debug, Clone)]
enum Op {
    Insert { src: i64, dst: i64, weight: i64 },
    Remove { src: i64, dst: i64 },
    QuerySucc { src: i64 },
    QueryPred { dst: i64 },
    QueryEdge { src: i64, dst: i64 },
    Snapshot,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let k = 0i64..6;
    prop_oneof![
        3 => (k.clone(), k.clone(), 0i64..3).prop_map(|(src, dst, weight)| Op::Insert {
            src, dst, weight
        }),
        2 => (k.clone(), k.clone()).prop_map(|(src, dst)| Op::Remove { src, dst }),
        1 => k.clone().prop_map(|src| Op::QuerySucc { src }),
        1 => k.clone().prop_map(|dst| Op::QueryPred { dst }),
        1 => (k.clone(), k.clone()).prop_map(|(src, dst)| Op::QueryEdge { src, dst }),
        1 => Just(Op::Snapshot),
    ]
}

fn variant_strategy() -> impl Strategy<Value = (Arc<Decomposition>, &'static str)> {
    let containers = prop_oneof![
        Just(ContainerKind::HashMap),
        Just(ContainerKind::TreeMap),
        Just(ContainerKind::ConcurrentHashMap),
        Just(ContainerKind::ConcurrentSkipListMap),
        Just(ContainerKind::CopyOnWriteArrayList),
    ];
    let structure = prop_oneof![Just(0u8), Just(1), Just(2)];
    let placement = prop_oneof![
        Just("coarse"),
        Just("fine"),
        Just("striped"),
        Just("speculative"),
    ];
    (structure, containers.clone(), containers, placement).prop_map(|(s, top, second, pl)| {
        let d = match s {
            0 => stick(top, second),
            1 => split(top, second),
            _ => diamond(top, second),
        };
        (d, pl)
    })
}

fn build_placement(d: &Arc<Decomposition>, kind: &str) -> Option<Arc<relc::LockPlacement>> {
    match kind {
        "coarse" => LockPlacement::coarse(d).ok(),
        "fine" => LockPlacement::fine(d).ok(),
        "striped" => LockPlacement::striped_root(d, 8).ok(),
        _ => LockPlacement::speculative(d, 4).ok(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn synthesized_matches_oracle(
        (d, pl) in variant_strategy(),
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        let Some(p) = build_placement(&d, pl) else {
            // Invalid container/placement combination — correctly rejected.
            return Ok(());
        };
        let rel = ConcurrentRelation::new(d.clone(), p).unwrap();
        let oracle = OracleRelation::empty(d.schema().clone());
        let schema = d.schema().clone();
        let key = |s: i64, t: i64| {
            schema.tuple(&[("src", Value::from(s)), ("dst", Value::from(t))]).unwrap()
        };
        for op in &ops {
            match op {
                Op::Insert { src, dst, weight } => {
                    let w = schema.tuple(&[("weight", Value::from(*weight))]).unwrap();
                    let got = rel.insert(&key(*src, *dst), &w).unwrap();
                    let want = oracle.insert(&key(*src, *dst), &w).unwrap();
                    prop_assert_eq!(got, want);
                }
                Op::Remove { src, dst } => {
                    let got = rel.remove(&key(*src, *dst)).unwrap();
                    let want = oracle.remove(&key(*src, *dst));
                    prop_assert_eq!(got, want);
                }
                Op::QuerySucc { src } => {
                    let pat = schema.tuple(&[("src", Value::from(*src))]).unwrap();
                    let cols = schema.column_set(&["dst", "weight"]).unwrap();
                    match rel.query(&pat, cols) {
                        Ok(got) => prop_assert_eq!(got, oracle.query(&pat, cols)),
                        Err(CoreError::NoValidPlan(_)) => {}
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                Op::QueryPred { dst } => {
                    let pat = schema.tuple(&[("dst", Value::from(*dst))]).unwrap();
                    let cols = schema.column_set(&["src", "weight"]).unwrap();
                    match rel.query(&pat, cols) {
                        Ok(got) => prop_assert_eq!(got, oracle.query(&pat, cols)),
                        Err(CoreError::NoValidPlan(_)) => {}
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                Op::QueryEdge { src, dst } => {
                    let cols = schema.column_set(&["weight"]).unwrap();
                    match rel.query(&key(*src, *dst), cols) {
                        Ok(got) => {
                            prop_assert_eq!(got.clone(), oracle.query(&key(*src, *dst), cols));
                            prop_assert!(got.len() <= 1, "FD guarantees one weight");
                        }
                        Err(CoreError::NoValidPlan(_)) => {}
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                Op::Snapshot => match rel.snapshot() {
                    Ok(got) => {
                        let want = oracle.query(&Tuple::empty(), schema.columns());
                        prop_assert_eq!(got, want);
                    }
                    Err(CoreError::NoValidPlan(_)) => {}
                    Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                },
            }
            prop_assert_eq!(rel.len(), oracle.len());
        }
        // Structural invariants and exact final contents.
        let final_rel = rel.verify().map_err(TestCaseError::fail)?;
        let final_oracle: std::collections::BTreeSet<Tuple> =
            oracle.snapshot().into_iter().collect();
        prop_assert_eq!(final_rel, final_oracle);
        oracle.check_fds().unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn kv_relation_is_a_correct_concurrent_map(
        ops in proptest::collection::vec((0i64..8, proptest::option::of(0i64..100)), 1..80),
    ) {
        // The kv schema: the §2 put-if-absent example. Model: BTreeMap with
        // put-if-absent semantics.
        let d = relc::decomp::library::kv(ContainerKind::ConcurrentHashMap);
        let p = LockPlacement::striped_root(&d, 8).unwrap();
        let rel = ConcurrentRelation::new(d.clone(), p).unwrap();
        let schema = d.schema().clone();
        let mut model: std::collections::BTreeMap<i64, i64> = Default::default();
        for (k, v) in ops {
            let key = schema.tuple(&[("key", Value::from(k))]).unwrap();
            match v {
                Some(v) => {
                    let val = schema.tuple(&[("value", Value::from(v))]).unwrap();
                    let got = rel.insert(&key, &val).unwrap();
                    let want = !model.contains_key(&k);
                    if want {
                        model.insert(k, v);
                    }
                    prop_assert_eq!(got, want);
                }
                None => {
                    let got = rel.remove(&key).unwrap();
                    let want = usize::from(model.remove(&k).is_some());
                    prop_assert_eq!(got, want);
                }
            }
            let cols = schema.column_set(&["value"]).unwrap();
            for (mk, mv) in &model {
                let key = schema.tuple(&[("key", Value::from(*mk))]).unwrap();
                let got = rel.query(&key, cols).unwrap();
                prop_assert_eq!(
                    got,
                    vec![schema.tuple(&[("value", Value::from(*mv))]).unwrap()]
                );
            }
            prop_assert_eq!(rel.len(), model.len());
        }
    }
}
