//! Executable transcriptions of the paper's worked examples: the §2 running
//! example, Fig. 2's dcache instance, Fig. 3's three decompositions with
//! their placements ψ1–ψ4, and the §5.2 query plans (2)–(4).

use relc::decomp::library::{dcache, diamond, split, stick};
use relc::placement::LockPlacement;
use relc::query::PlanStep;
use relc::{ConcurrentRelation, Planner};
use relc_containers::ContainerKind;
use relc_spec::{ColumnSet, Tuple, Value};

/// §2: `insert r0 ⟨src:1,dst:2⟩ ⟨weight:42⟩`, then a conflicting insert
/// leaves the relation unchanged; query successors; remove by dst needs a
/// key so the §2 `remove r ⟨dst: 2⟩` is run through per-edge key removal.
#[test]
fn section2_running_example() {
    let d = stick(ContainerKind::HashMap, ContainerKind::TreeMap);
    let p = LockPlacement::coarse(&d).unwrap();
    let r = ConcurrentRelation::new(d.clone(), p).unwrap();
    let schema = r.schema().clone();

    let s = schema
        .tuple(&[("src", Value::from(1)), ("dst", Value::from(2))])
        .unwrap();
    assert!(r
        .insert(&s, &schema.tuple(&[("weight", Value::from(42))]).unwrap())
        .unwrap());
    // "A subsequent insertion ... leaves the relation unchanged, because
    // relation r1 already contains an edge with the same src and dst."
    assert!(!r
        .insert(&s, &schema.tuple(&[("weight", Value::from(101))]).unwrap())
        .unwrap());
    let snap = r.snapshot().unwrap();
    assert_eq!(snap.len(), 1);
    assert_eq!(
        snap[0],
        schema
            .tuple(&[
                ("src", Value::from(1)),
                ("dst", Value::from(2)),
                ("weight", Value::from(42)),
            ])
            .unwrap()
    );

    // "query r ⟨src: 1⟩ {dst, weight}"
    let res = r
        .query(
            &schema.tuple(&[("src", Value::from(1))]).unwrap(),
            schema.column_set(&["dst", "weight"]).unwrap(),
        )
        .unwrap();
    assert_eq!(
        res,
        vec![schema
            .tuple(&[("dst", Value::from(2)), ("weight", Value::from(42))])
            .unwrap()]
    );

    // "remove r ⟨dst: 2⟩": our implementation (like the paper's) removes by
    // key, so enumerate matching keys first, then remove each.
    let matches = r
        .query(
            &schema.tuple(&[("dst", Value::from(2))]).unwrap(),
            schema.column_set(&["src", "dst"]).unwrap(),
        )
        .unwrap();
    for key in matches {
        assert_eq!(r.remove(&key).unwrap(), 1);
    }
    assert!(r.is_empty());
}

/// Fig. 2(b): the three-directory-entry instance, built through the public
/// API, then queried both through the tree path and the hash index.
#[test]
fn figure2_dcache_instance() {
    let d = dcache();
    let p = LockPlacement::fine(&d).unwrap();
    let r = ConcurrentRelation::new(d.clone(), p).unwrap();
    let schema = r.schema().clone();
    let ins = |parent: i64, name: &str, child: i64| {
        let s = schema
            .tuple(&[("parent", Value::from(parent)), ("name", Value::from(name))])
            .unwrap();
        let t = schema.tuple(&[("child", Value::from(child))]).unwrap();
        r.insert(&s, &t).unwrap()
    };
    assert!(ins(1, "a", 2));
    assert!(ins(2, "b", 3));
    assert!(ins(2, "c", 4));

    let rel = r.verify().unwrap();
    assert_eq!(rel.len(), 3);

    // Iterating the children of directory 2 uses the tree path.
    let children = r
        .query(
            &schema.tuple(&[("parent", Value::from(2))]).unwrap(),
            schema.column_set(&["name", "child"]).unwrap(),
        )
        .unwrap();
    assert_eq!(children.len(), 2);

    // Unmount-style full iteration (plan (2)/(3) territory).
    assert_eq!(r.snapshot().unwrap().len(), 3);
}

/// Fig. 2(b), structurally: the `y` instances reached through the tree path
/// (ρ→x→y) and through the hash index (ρ→y) are the *same objects* — the
/// decomposition instance shares nodes rather than duplicating them.
#[test]
fn figure2_instance_sharing_is_physical() {
    let d = dcache();
    let p = LockPlacement::fine(&d).unwrap();
    let r = ConcurrentRelation::new(d.clone(), p).unwrap();
    let schema = r.schema().clone();
    for (parent, name, child) in [(1, "a", 2), (2, "b", 3), (2, "c", 4)] {
        let s = schema
            .tuple(&[("parent", Value::from(parent)), ("name", Value::from(name))])
            .unwrap();
        let t = schema.tuple(&[("child", Value::from(child))]).unwrap();
        assert!(r.insert(&s, &t).unwrap());
    }
    // verify() walks both branches, checks they represent the same relation
    // AND that shared (node, key) pairs are physically one Arc (see
    // relc::instance::verify_instance's "duplicated instead of shared"
    // check, which the instance-layer unit tests prove fires on duplicated
    // y nodes). A representation that duplicated y would fail here.
    let rel = r.verify().unwrap();
    assert_eq!(rel.len(), 3);

    // Mutating through one path is observed through the other — the
    // behavioral face of physical sharing.
    let key = schema
        .tuple(&[("parent", Value::from(2)), ("name", Value::from("b"))])
        .unwrap();
    assert_eq!(
        r.remove(&key).unwrap(),
        1,
        "remove via the (parent,name) key"
    );
    let listing = r
        .query(
            &schema.tuple(&[("parent", Value::from(2))]).unwrap(),
            schema.column_set(&["name", "child"]).unwrap(),
        )
        .unwrap();
    assert_eq!(
        listing.len(),
        1,
        "tree path no longer lists the removed entry"
    );
    r.verify().unwrap();
}

/// Fig. 3: the stick/split/diamond decompositions accept exactly the
/// placements the paper gives them (ψ1 coarse, ψ2 fine, ψ3 striped,
/// ψ4 speculative).
#[test]
fn figure3_placements_validate() {
    let stick_d = stick(ContainerKind::TreeMap, ContainerKind::TreeMap);
    assert!(LockPlacement::coarse(&stick_d).is_ok(), "ψ1 on Fig. 3(a)");

    let split_d = split(ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap);
    assert!(LockPlacement::fine(&split_d).is_ok(), "ψ2 on Fig. 3(b)");
    assert!(
        LockPlacement::striped_root(&split_d, 1024).is_ok(),
        "ψ3 on Fig. 3(b)"
    );

    let diamond_d = diamond(ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap);
    let spec = LockPlacement::speculative(&diamond_d, 1024).unwrap();
    // ψ4: the two root edges are speculative, everything else source-locked.
    let rx = diamond_d.edge_between("ρ", "x").unwrap();
    let ry = diamond_d.edge_between("ρ", "y").unwrap();
    let xw = diamond_d.edge_between("x", "w").unwrap();
    assert!(spec.edge(rx).speculative);
    assert!(spec.edge(ry).speculative);
    assert!(!spec.edge(xw).speculative);
    assert_eq!(spec.describe().matches("target/").count(), 2);
}

/// §5.2 plans (2)–(4): the dcache full-iteration query under coarse and
/// fine placements, rendered in the paper's let-notation.
#[test]
fn section52_query_plans() {
    let d = dcache();

    // Plan (2): coarse placement. The planner picks the 2-edge chain
    // ρy, yz: lock ρ once, scan twice, unlock.
    let coarse = LockPlacement::coarse(&d).unwrap();
    let planner = Planner::new(d.clone(), coarse);
    let plan2 = planner
        .plan_query(ColumnSet::EMPTY, d.schema().columns())
        .unwrap();
    let rendered = planner.render(&plan2);
    assert!(
        rendered.contains("scan(a, ρy)") || rendered.contains("scan(b, ρy)"),
        "{rendered}"
    );
    assert!(rendered.contains("yz"), "{rendered}");
    // Exactly one physical lock is involved (ρ), matching plan (2)'s single
    // lock/unlock pair around the scans.
    let lock_steps = plan2.steps.iter().filter(|s| s.is_lock()).count();
    assert_eq!(lock_steps, 2, "one per edge, both at ρ: {rendered}");

    // Under the fine placement, the same query needs locks at each level,
    // like plan (4) (the planner still prefers the shorter ρy chain over
    // plan (4)'s 3-edge path, so we check the 3-edge variant explicitly).
    let fine = LockPlacement::fine(&d).unwrap();
    let planner = Planner::new(d.clone(), fine);
    let plan = planner
        .plan_query(ColumnSet::EMPTY, d.schema().columns())
        .unwrap();
    let rendered = planner.render(&plan);
    assert!(rendered.contains("unlock"), "{rendered}");

    // Plan (3)'s chain ρx, xy, yz exists in the enumeration space: verify
    // that it is *valid* by querying with parent bound (which makes the
    // tree path the best plan).
    let by_parent = planner
        .plan_query(
            d.schema().column_set(&["parent"]).unwrap(),
            d.schema().columns(),
        )
        .unwrap();
    let rx = d.edge_between("ρ", "x").unwrap();
    assert!(
        by_parent
            .steps
            .iter()
            .any(|s| matches!(s, PlanStep::Lookup { edge } if *edge == rx)),
        "parent-bound queries lookup the tree level: {}",
        planner.render(&by_parent)
    );
}

/// Fig. 1's taxonomy, as the planner consumes it: lock modes follow the
/// container's read-safety, and speculative placement demands linearizable
/// lookups.
#[test]
fn figure1_taxonomy_drives_the_compiler() {
    use relc_locks::LockMode;
    // Splay-tree edges force exclusive read locks.
    let d = stick(ContainerKind::SplayTreeMap, ContainerKind::TreeMap);
    let p = LockPlacement::coarse(&d).unwrap();
    let ru = d.edge_between("ρ", "u").unwrap();
    assert_eq!(p.read_mode(ru), LockMode::Exclusive);
    let r = ConcurrentRelation::new(d.clone(), p).unwrap();
    let s = d
        .schema()
        .tuple(&[("src", Value::from(1)), ("dst", Value::from(2))])
        .unwrap();
    let w = d.schema().tuple(&[("weight", Value::from(5))]).unwrap();
    r.insert(&s, &w).unwrap();
    assert_eq!(r.snapshot().unwrap().len(), 1);

    // HashMap cannot host a speculative edge; ConcurrentHashMap can.
    let d = diamond(ContainerKind::HashMap, ContainerKind::HashMap);
    assert!(LockPlacement::speculative(&d, 4).is_err());
    let d = diamond(ContainerKind::ConcurrentHashMap, ContainerKind::HashMap);
    assert!(LockPlacement::speculative(&d, 4).is_ok());
}

/// The paper's guarantee, §4.2/§5: "the resulting code is correct by
/// construction: individual relational operations are implemented correctly
/// and the aggregate set of operations is serializable and deadlock free."
/// Spot-check serializability machinery: a two-phase violation panics.
#[test]
fn two_phase_discipline_is_enforced() {
    use relc_locks::{LockMode, LockStats, PhysicalLock, TwoPhaseEngine};
    use std::sync::Arc;
    let result = std::panic::catch_unwind(|| {
        let mut e: TwoPhaseEngine<u32> = TwoPhaseEngine::new(Arc::new(LockStats::new()));
        let a = Arc::new(PhysicalLock::new());
        let b = Arc::new(PhysicalLock::new());
        e.acquire(1, &a, LockMode::Shared).unwrap();
        e.unlock(&1);
        // Growing after shrinking: must panic.
        let _ = e.acquire(2, &b, LockMode::Shared);
    });
    assert!(result.is_err());
}

/// Empty-pattern insert uses the relation-nonempty existence check.
#[test]
fn insert_with_empty_key_pattern() {
    let d = stick(ContainerKind::HashMap, ContainerKind::TreeMap);
    let p = LockPlacement::coarse(&d).unwrap();
    let r = ConcurrentRelation::new(d.clone(), p).unwrap();
    let schema = r.schema().clone();
    let full = schema
        .tuple(&[
            ("src", Value::from(1)),
            ("dst", Value::from(2)),
            ("weight", Value::from(3)),
        ])
        .unwrap();
    // insert r ⟨⟩ t: inserts iff the relation is empty.
    assert!(r.insert(&Tuple::empty(), &full).unwrap());
    let full2 = schema
        .tuple(&[
            ("src", Value::from(9)),
            ("dst", Value::from(9)),
            ("weight", Value::from(9)),
        ])
        .unwrap();
    assert!(
        !r.insert(&Tuple::empty(), &full2).unwrap(),
        "relation not empty"
    );
    assert_eq!(r.len(), 1);
}
