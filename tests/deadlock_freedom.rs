//! Deadlock-freedom stress (§5.1): adversarial multi-threaded workloads on
//! every placement family, with watchdogs. "If all transactions acquire
//! locks in ascending lock order, then we are guaranteed that concurrent
//! transactions are deadlock-free."

use std::sync::{Arc, Barrier};
use std::time::Duration;

use relc_integration::graph_variant_matrix;
use relc_spec::Value;

fn with_watchdog(secs: u64, name: String, f: impl FnOnce() + Send + 'static) {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    rx.recv_timeout(Duration::from_secs(secs))
        .unwrap_or_else(|_| panic!("watchdog: {name} did not finish (deadlock?)"));
}

/// Bidirectional edge pairs — transactions touching (a, b) and (b, a)
/// exercise opposite traversal orders over src- and dst-keyed branches,
/// the classic deadlock shape.
#[test]
fn opposite_key_orders_do_not_deadlock() {
    for (name, rel) in graph_variant_matrix() {
        let rel2 = rel.clone();
        with_watchdog(90, name.clone(), move || {
            let threads = 8usize;
            let barrier = Arc::new(Barrier::new(threads));
            let handles: Vec<_> = (0..threads)
                .map(|tid| {
                    let rel = rel2.clone();
                    let barrier = barrier.clone();
                    std::thread::spawn(move || {
                        barrier.wait();
                        for i in 0..300i64 {
                            let (a, b) = ((i % 4) + 1, ((i + tid as i64) % 4) + 1);
                            let key = rel
                                .schema()
                                .tuple(&[("src", Value::from(a)), ("dst", Value::from(b))])
                                .unwrap();
                            let rev = rel
                                .schema()
                                .tuple(&[("src", Value::from(b)), ("dst", Value::from(a))])
                                .unwrap();
                            let w = rel.schema().tuple(&[("weight", Value::from(i))]).unwrap();
                            if tid % 2 == 0 {
                                let _ = rel.insert(&key, &w);
                                let _ = rel.remove(&rev);
                            } else {
                                let _ = rel.insert(&rev, &w);
                                let _ = rel.remove(&key);
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

/// Speculation-heavy churn: writers constantly create and destroy the
/// targets that readers speculatively lock (§4.5's guess-validate-retry).
#[test]
fn speculative_churn_makes_progress() {
    let d = relc::decomp::library::diamond(
        relc_containers::ContainerKind::ConcurrentHashMap,
        relc_containers::ContainerKind::HashMap,
    );
    let p = relc::placement::LockPlacement::speculative(&d, 4).unwrap();
    let rel = Arc::new(relc::ConcurrentRelation::new(d, p).unwrap());
    let rel2 = rel.clone();
    with_watchdog(90, "speculative churn".into(), move || {
        let threads = 8usize;
        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let rel = rel2.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    let dw = rel.schema().column_set(&["dst", "weight"]).unwrap();
                    for i in 0..500i64 {
                        let k = i % 3; // tiny keyspace: constant target churn
                        let key = rel
                            .schema()
                            .tuple(&[("src", Value::from(k)), ("dst", Value::from(k))])
                            .unwrap();
                        let w = rel
                            .schema()
                            .tuple(&[("weight", Value::from(tid as i64))])
                            .unwrap();
                        match (tid + i as usize) % 3 {
                            0 => {
                                let _ = rel.insert(&key, &w);
                            }
                            1 => {
                                let _ = rel.remove(&key);
                            }
                            _ => {
                                let pat = rel.schema().tuple(&[("src", Value::from(k))]).unwrap();
                                let _ = rel.query(&pat, dw).unwrap();
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    rel.verify().unwrap();
    // Speculation failures should actually have been exercised.
    let stats = rel.lock_stats();
    assert!(stats.acquisitions > 0);
}

/// Multi-operation transactions acquiring locks in *opposite* key orders —
/// the textbook deadlock shape — must restart and make progress, never
/// hang: transaction A touches key 1 then key 2 while B touches 2 then 1,
/// under one two-phase scope each. The engine's ordered/try-restart
/// protocol turns the would-be deadlock into a restart of the whole
/// closure.
#[test]
fn conflicting_transaction_orders_restart_not_deadlock() {
    for (name, rel) in graph_variant_matrix() {
        // Two fixed keys, touched in opposite orders by alternating threads.
        let k = |rel: &relc::ConcurrentRelation, s: i64| {
            rel.schema()
                .tuple(&[("src", Value::from(s)), ("dst", Value::from(s))])
                .unwrap()
        };
        let w = |rel: &relc::ConcurrentRelation, v: i64| {
            rel.schema().tuple(&[("weight", Value::from(v))]).unwrap()
        };
        rel.insert(&k(&rel, 1), &w(&rel, 0)).unwrap();
        rel.insert(&k(&rel, 2), &w(&rel, 0)).unwrap();
        let rel2 = rel.clone();
        let name2 = name.clone();
        with_watchdog(90, name.clone(), move || {
            let threads = 8usize;
            let barrier = Arc::new(Barrier::new(threads));
            let handles: Vec<_> = (0..threads)
                .map(|tid| {
                    let rel = rel2.clone();
                    let barrier = barrier.clone();
                    let name = name2.clone();
                    std::thread::spawn(move || {
                        barrier.wait();
                        for i in 0..200i64 {
                            let (first, second) = if tid % 2 == 0 { (1, 2) } else { (2, 1) };
                            let key1 = rel
                                .schema()
                                .tuple(&[("src", Value::from(first)), ("dst", Value::from(first))])
                                .unwrap();
                            let key2 = rel
                                .schema()
                                .tuple(&[
                                    ("src", Value::from(second)),
                                    ("dst", Value::from(second)),
                                ])
                                .unwrap();
                            let wt = rel.schema().tuple(&[("weight", Value::from(i))]).unwrap();
                            rel.transaction(|tx| {
                                tx.update(&key1, &wt)?;
                                tx.update(&key2, &wt)?;
                                Ok(())
                            })
                            .unwrap_or_else(|e| panic!("{name}: {e}"));
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(rel.len(), 2, "{name}");
        let s = rel.lock_stats();
        assert!(s.commits > 0, "{name}: {s}");
        assert_eq!(s.user_rollbacks, 0, "{name}: no aborts here: {s}");
    }
}

/// Batch-vs-batch crossing orders: half the threads submit their batches
/// with keys ascending, half descending — the *request* orders cross, but
/// the bulk sweep re-sorts every batch's lock targets into the §5.1 global
/// order before acquiring, so the workload must neither deadlock nor
/// livelock. The bounded-restarts assertion catches livelock: sorted
/// in-order sweeps may block but only restart on genuine out-of-order
/// conflicts (speculative guesses, non-root locks), so restarts must stay
/// far below the op count × a generous constant.
#[test]
fn crossing_batch_orders_do_not_deadlock_or_livelock() {
    for (name, rel) in graph_variant_matrix() {
        let rel2 = rel.clone();
        let rounds = 150i64;
        with_watchdog(120, name.clone(), move || {
            let threads = 8usize;
            let barrier = Arc::new(Barrier::new(threads));
            let handles: Vec<_> = (0..threads)
                .map(|tid| {
                    let rel = rel2.clone();
                    let barrier = barrier.clone();
                    std::thread::spawn(move || {
                        barrier.wait();
                        for i in 0..rounds {
                            // Everyone fights over the same 6 keys; even
                            // threads batch them ascending, odd descending.
                            let mut keys: Vec<i64> = (0..6).collect();
                            if tid % 2 == 1 {
                                keys.reverse();
                            }
                            let rows: Vec<_> = keys
                                .iter()
                                .map(|&k| {
                                    (
                                        rel.schema()
                                            .tuple(&[
                                                ("src", Value::from(k)),
                                                ("dst", Value::from(k)),
                                            ])
                                            .unwrap(),
                                        rel.schema().tuple(&[("weight", Value::from(i))]).unwrap(),
                                    )
                                })
                                .collect();
                            let _ = rel.insert_all(&rows).unwrap();
                            let key_pats: Vec<_> = rows.into_iter().map(|(s, _)| s).collect();
                            let _ = rel.remove_all(&key_pats).unwrap();
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
        let s = rel.lock_stats();
        assert!(s.commits > 0, "{name}: {s}");
        // Livelock bound: 8 threads × rounds × (insert_all + remove_all),
        // each allowed a generous handful of restarts on average.
        let total_batches = 8 * rounds as u64 * 2;
        assert!(
            s.restarts < total_batches * 32,
            "{name}: restart storm looks like livelock: {s}"
        );
    }
}

/// Batch writers against single-op writers walking the keys in the
/// opposite order — the mixed-granularity version of the crossing test.
#[test]
fn batch_vs_single_crossing_orders_make_progress() {
    for (name, rel) in graph_variant_matrix() {
        let rel2 = rel.clone();
        with_watchdog(120, name.clone(), move || {
            let threads = 8usize;
            let barrier = Arc::new(Barrier::new(threads));
            let handles: Vec<_> = (0..threads)
                .map(|tid| {
                    let rel = rel2.clone();
                    let barrier = barrier.clone();
                    std::thread::spawn(move || {
                        barrier.wait();
                        let key = |k: i64| {
                            rel.schema()
                                .tuple(&[("src", Value::from(k)), ("dst", Value::from(k))])
                                .unwrap()
                        };
                        let w = |v: i64| rel.schema().tuple(&[("weight", Value::from(v))]).unwrap();
                        for i in 0..150i64 {
                            if tid % 2 == 0 {
                                // Batcher: ascending 4-key batches.
                                let rows: Vec<_> = (0..4).map(|k| (key(k), w(i))).collect();
                                let _ = rel.insert_all(&rows).unwrap();
                                let _ = rel.remove_all(&[key(0), key(1), key(2), key(3)]).unwrap();
                            } else {
                                // Single-op writer: descending walk.
                                for k in (0..4).rev() {
                                    let _ = rel.insert(&key(k), &w(i)).unwrap();
                                }
                                for k in (0..4).rev() {
                                    let _ = rel.remove(&key(k)).unwrap();
                                }
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
        let s = rel.lock_stats();
        assert!(
            s.restarts < 8 * 150 * 8 * 32,
            "{name}: restart storm looks like livelock: {s}"
        );
    }
}

/// The restart machinery terminates: after heavy contention, all lock
/// statistics are coherent (restarts imply contended or speculative events).
#[test]
fn restart_statistics_are_coherent() {
    for (name, rel) in graph_variant_matrix().into_iter().take(8) {
        let rel2 = rel.clone();
        with_watchdog(60, name.clone(), move || {
            let threads = 4usize;
            let barrier = Arc::new(Barrier::new(threads));
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let rel = rel2.clone();
                    let barrier = barrier.clone();
                    std::thread::spawn(move || {
                        barrier.wait();
                        for i in 0..300i64 {
                            let key = rel
                                .schema()
                                .tuple(&[("src", Value::from(1)), ("dst", Value::from(i % 2))])
                                .unwrap();
                            let w = rel.schema().tuple(&[("weight", Value::from(i))]).unwrap();
                            let _ = rel.insert(&key, &w);
                            let _ = rel.remove(&key);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        let s = rel.lock_stats();
        assert!(s.acquisitions > 0, "{name}: {s}");
        assert!(
            s.restarts >= s.upgrades + s.speculation_failures,
            "{name}: restarts subsume upgrades and speculation failures: {s}"
        );
    }
}
