//! Cross-crate integration tests: the full synthesis pipeline (schema →
//! decomposition → placement → relation) behaving identically to the §2
//! oracle, sequentially and under concurrency, across the whole variant
//! matrix.

use std::sync::{Arc, Barrier};

use relc::CoreError;
use relc_integration::graph_variant_matrix;
use relc_spec::{OracleRelation, Tuple, Value};

fn edge(rel: &relc::ConcurrentRelation, s: i64, d: i64) -> Tuple {
    rel.schema()
        .tuple(&[("src", Value::from(s)), ("dst", Value::from(d))])
        .unwrap()
}

fn weight(rel: &relc::ConcurrentRelation, w: i64) -> Tuple {
    rel.schema().tuple(&[("weight", Value::from(w))]).unwrap()
}

#[test]
fn sequential_differential_vs_oracle_whole_matrix() {
    for (name, rel) in graph_variant_matrix() {
        let oracle = OracleRelation::empty(rel.schema().clone());
        let mut x = 0xdeadbeefu64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for step in 0..500 {
            let s = (next() % 8) as i64;
            let d = (next() % 8) as i64;
            let w = (next() % 3) as i64;
            match next() % 5 {
                0 | 1 => {
                    let got = rel.insert(&edge(&rel, s, d), &weight(&rel, w)).unwrap();
                    let want = oracle.insert(&edge(&rel, s, d), &weight(&rel, w)).unwrap();
                    assert_eq!(got, want, "{name} step {step}: insert({s},{d},{w})");
                }
                2 => {
                    let got = rel.remove(&edge(&rel, s, d)).unwrap();
                    let want = oracle.remove(&edge(&rel, s, d));
                    assert_eq!(got, want, "{name} step {step}: remove({s},{d})");
                }
                3 => {
                    let pat = rel.schema().tuple(&[("src", Value::from(s))]).unwrap();
                    let cols = rel.schema().column_set(&["dst", "weight"]).unwrap();
                    match rel.query(&pat, cols) {
                        Ok(got) => assert_eq!(
                            got,
                            oracle.query(&pat, cols),
                            "{name} step {step}: successors({s})"
                        ),
                        Err(CoreError::NoValidPlan(_)) => {} // speculative sticks
                        Err(e) => panic!("{name}: {e}"),
                    }
                }
                _ => {
                    // Full-relation snapshot, where plannable.
                    match rel.snapshot() {
                        Ok(got) => {
                            let want = oracle.query(&Tuple::empty(), rel.schema().columns());
                            assert_eq!(got, want, "{name} step {step}: snapshot");
                        }
                        Err(CoreError::NoValidPlan(_)) => {}
                        Err(e) => panic!("{name}: {e}"),
                    }
                }
            }
        }
        let final_rel = rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
        let final_oracle: std::collections::BTreeSet<Tuple> =
            oracle.snapshot().into_iter().collect();
        assert_eq!(final_rel, final_oracle, "{name}: final state");
    }
}

#[test]
fn concurrent_disjoint_threads_merge_cleanly() {
    // Threads operate on disjoint src ranges; the final state must be the
    // union of each thread's sequential effect.
    for (name, rel) in graph_variant_matrix() {
        let threads = 4usize;
        let per = 40i64;
        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads as i64)
            .map(|tid| {
                let rel = rel.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    let base = tid * 1_000;
                    for i in 0..per {
                        assert!(rel
                            .insert(&edge(&rel, base + i, i % 7), &weight(&rel, i))
                            .unwrap());
                    }
                    // Remove every third edge again.
                    for i in (0..per).step_by(3) {
                        assert_eq!(rel.remove(&edge(&rel, base + i, i % 7)).unwrap(), 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let expected_per_thread = per as usize - ((per + 2) / 3) as usize;
        assert_eq!(
            rel.len(),
            threads * expected_per_thread,
            "{name}: final cardinality"
        );
        rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn concurrent_contended_single_key_is_coherent() {
    for (name, rel) in graph_variant_matrix().into_iter().take(10) {
        let threads = 8usize;
        let rounds = 200i64;
        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads as i64)
            .map(|tid| {
                let rel = rel.clone();
                let barrier = barrier.clone();
                let name = name.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    for i in 0..rounds {
                        // Everyone fights over edge (1, 1).
                        let _ = rel.insert(&edge(&rel, 1, 1), &weight(&rel, tid));
                        if i % 3 == tid % 3 {
                            let _ = rel.remove(&edge(&rel, 1, 1));
                        }
                        let cols = rel.schema().column_set(&["weight"]).unwrap();
                        let got = rel.query(&edge(&rel, 1, 1), cols).unwrap();
                        assert!(got.len() <= 1, "{name}: FD violated under contention");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        rel.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn dcache_end_to_end_with_hash_shortcut() {
    // The Fig. 2 decomposition as a client would use it.
    let d = relc::decomp::library::dcache();
    let p = relc::placement::LockPlacement::fine(&d).unwrap();
    let fs = relc::ConcurrentRelation::new(d.clone(), p).unwrap();
    let schema = fs.schema().clone();
    let entry = |parent: i64, name: &str| {
        schema
            .tuple(&[("parent", Value::from(parent)), ("name", Value::from(name))])
            .unwrap()
    };
    let child = |c: i64| schema.tuple(&[("child", Value::from(c))]).unwrap();

    // Build a small tree, concurrently.
    let fs = Arc::new(fs);
    let handles: Vec<_> = (0..4i64)
        .map(|tid| {
            let fs = fs.clone();
            std::thread::spawn(move || {
                for i in 0..25i64 {
                    let inode = tid * 100 + i + 2;
                    let name = format!("f{tid}_{i}");
                    let s = fs
                        .schema()
                        .tuple(&[
                            ("parent", Value::from(1)),
                            ("name", Value::from(name.as_str())),
                        ])
                        .unwrap();
                    let t = fs.schema().tuple(&[("child", Value::from(inode))]).unwrap();
                    assert!(fs.insert(&s, &t).unwrap());
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(fs.len(), 100);
    // Directory listing of parent 1.
    let pat = schema.tuple(&[("parent", Value::from(1))]).unwrap();
    let listing = fs
        .query(&pat, schema.column_set(&["name", "child"]).unwrap())
        .unwrap();
    assert_eq!(listing.len(), 100);
    // Point lookups resolve through the hash index.
    let got = fs
        .query(&entry(1, "f0_0"), schema.column_set(&["child"]).unwrap())
        .unwrap();
    assert_eq!(got, vec![child(2)]);
    fs.verify().unwrap();
}
