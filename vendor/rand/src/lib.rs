//! Offline stand-in for the subset of `rand` this workspace uses: a
//! seedable deterministic generator ([`rngs::StdRng`]), the
//! [`SeedableRng`] construction trait, and the [`RngExt`] sampling
//! extension (`random`, `random_range`).
//!
//! The generator is SplitMix64-seeded xoshiro256**, which is more than
//! adequate for workload generation and property tests (the only uses in
//! this workspace) — it makes no cryptographic claims.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator.
pub trait Standard: Sized {
    /// Draws a uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is negligible for the spans used here
                // (bounded well below 2^64).
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// Draws a uniform value of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Ready-made generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into four non-zero words.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next() | 1, next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x = a.random_range(0i64..57);
            assert_eq!(x, b.random_range(0i64..57));
            assert!((0..57).contains(&x));
            let f = a.random_range(0.0..1.0);
            assert_eq!(f, b.random_range(0.0..1.0));
            assert!((0.0..1.0).contains(&f));
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(c.random::<u64>(), StdRng::seed_from_u64(42).random::<u64>());
    }

    #[test]
    fn spread_is_plausible() {
        let mut r = StdRng::seed_from_u64(7);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[r.random_range(0usize..8)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 700), "{counts:?}");
    }
}
