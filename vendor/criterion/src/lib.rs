//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Implements the `Criterion` → benchmark-group → `Bencher` flow with a
//! simple calibrated timing loop (warm-up, then a measured batch sized to
//! a target duration) and median-of-samples reporting to stdout. None of
//! the real crate's statistics (outlier classification, regressions,
//! HTML reports) are reproduced — the numbers are honest wall-clock
//! medians, good enough for coarse comparisons and for keeping the
//! `cargo bench` targets compiling and runnable offline.
//!
//! Respects two environment variables: `BENCH_QUICK=1` shrinks sample
//! counts (CI smoke), and filters passed on the command line select
//! groups by substring, like the real crate.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (benches here mostly use
/// `std::hint::black_box` directly).
pub use std::hint::black_box;

/// Top-level driver, one per `criterion_main!` binary.
pub struct Criterion {
    filter: Option<String>,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let filter = args.iter().find(|a| !a.starts_with('-')).cloned();
        Criterion {
            filter,
            quick: std::env::var_os("BENCH_QUICK").is_some(),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let skip = self.filter.as_deref().is_some_and(|f| !name.contains(f));
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: if self.quick { 10 } else { 50 },
            skip,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name);
        group.bench_with_input(BenchmarkId::from_parameter("-"), &(), |b, ()| f(b));
        group.finish();
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    skip: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(5);
        self
    }

    /// Runs one benchmark with an input parameter.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        if self.skip {
            return;
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        bencher.report(&self.name, &id.0);
    }

    /// Finishes the group (reporting happens per benchmark; this is a
    /// source-compatibility no-op).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from a parameter value.
    pub fn from_parameter(p: impl fmt::Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// An id with a function name and a parameter value.
    pub fn new(name: impl fmt::Display, p: impl fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

/// Passed to the benchmark closure; runs the measured routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `routine`: warm-up, batch-size calibration to ~2ms per
    /// sample, then `sample_size` timed batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find a batch size taking ≥ ~2ms.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let took = start.elapsed();
            if took >= Duration::from_millis(2) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed().div_f64(batch as f64));
        }
    }

    fn report(&mut self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("{group}/{id:<24} (no samples)");
            return;
        }
        self.samples.sort();
        let median = self.samples[self.samples.len() / 2];
        let lo = self.samples[self.samples.len() / 10];
        let hi = self.samples[self.samples.len() - 1 - self.samples.len() / 10];
        println!(
            "{group}/{id:<24} median {:>12} [{} .. {}]",
            fmt_dur(median),
            fmt_dur(lo),
            fmt_dur(hi)
        );
    }
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{:.2} ms", ns as f64 / 1e6)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim_smoke");
        g.sample_size(5);
        g.bench_with_input(BenchmarkId::from_parameter("noop"), &(), |b, ()| {
            b.iter(|| 1 + 1)
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion {
            filter: None,
            quick: true,
        };
        noop_bench(&mut c);
    }
}
