//! Offline stand-in for the subset of `crossbeam` this workspace uses
//! (the `epoch` module consumed by the concurrent skip list).
//!
//! Unlike the original stand-in — which satisfied the epoch contract by
//! deferring destruction *forever* (a sound but leaky instantiation) —
//! this version implements real epoch-based reclamation:
//!
//! * a **global epoch** counter (monotonically increasing `u64`);
//! * **participant records**, one per thread that has ever pinned,
//!   registered in a lock-free singly-linked list; each record publishes
//!   `(local epoch, pinned bit)` on [`epoch::pin`] and clears the bit when
//!   the last [`epoch::Guard`] drops. Records are recycled: a thread that
//!   exits releases its slot (`in_use = false`) and a later thread claims
//!   it by CAS, so the list is bounded by the peak number of concurrent
//!   threads, not by the total ever spawned;
//! * **deferred-garbage bags**: [`Guard::defer_destroy`] pushes a
//!   type-erased destructor into the owning participant's local bag; bags
//!   are sealed — tagged with the global epoch at seal time and pushed
//!   onto a global lock-free (Treiber) stack — when they fill, at thread
//!   exit, and by [`epoch::flush`] (which sweeps every participant's
//!   bag), so the write path never allocates a bag per operation;
//! * **epoch advancement**: the global epoch may step from `e` to `e + 1`
//!   only once every *pinned* participant has published epoch `e`. A bag
//!   sealed at epoch `e` is freed once the global epoch reaches `e + 2`:
//!   at that point every thread pinned at retirement time (epoch ≤ `e`)
//!   has unpinned, and every later pin's epoch load is ordered after the
//!   unlink that made the garbage unreachable, so no guard can still
//!   observe it. All epoch protocol accesses use `SeqCst`; the safety
//!   argument above is in terms of the resulting single total order.
//!
//! Collection is amortized: every few sealed bags (and periodically by pin
//! count) a thread attempts one epoch advance and drains the sealed-bag
//! stack, freeing what is ripe and re-pushing the rest. In-flight garbage
//! is therefore bounded by the bag capacity times the number of
//! participants plus what one advance cycle can ripen — it cannot grow
//! monotonically the way the old stand-in's leak did.
//!
//! Observability for tests lives in [`epoch::ReclamationStats`]
//! (process-wide retired / reclaimed counters; the epoch domain is global,
//! exactly as in the real crate's default collector) and
//! [`epoch::flush`], a **test-only** helper that seals the calling
//! thread's bag and drives advance/collect rounds until the in-flight
//! count stops improving — at quiescence (no thread pinned) that means
//! zero.
//!
//! `Drop`-time teardown via [`epoch::unprotected`] still frees the
//! *linked* structure eagerly; an unprotected `defer_destroy` destroys
//! immediately (the caller vouches for exclusivity).

#![deny(unsafe_op_in_unsafe_fn)]

/// Epoch-based reclamation API (real garbage collection; see crate docs).
pub mod epoch {
    use std::marker::PhantomData;
    use std::mem;
    use std::ptr;
    use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering, Ordering::SeqCst};
    use std::sync::Mutex;

    /// Deferred destructions per bag before it is sealed and handed to the
    /// global garbage stack (non-empty bags also seal at thread exit and
    /// in [`flush`]'s sweep).
    const BAG_CAPACITY: usize = 64;
    /// Attempt an advance+collect cycle every this many sealed bags…
    const SEALS_PER_COLLECT: u64 = 4;
    /// …and every this many pins, so read-mostly threads also help.
    const PINS_PER_COLLECT: u64 = 128;
    /// Bound on `flush`'s advance/collect rounds without progress.
    const FLUSH_STALL_ROUNDS: u32 = 4;

    // ---------------------------------------------------------------------
    // Global collector state.
    // ---------------------------------------------------------------------

    /// The global epoch. Advances by 1; never wraps in practice (u64).
    static GLOBAL_EPOCH: AtomicU64 = AtomicU64::new(0);
    /// Head of the lock-free participant list.
    static PARTICIPANTS: AtomicPtr<Participant> = AtomicPtr::new(ptr::null_mut());
    /// Head of the Treiber stack of sealed garbage bags.
    static GARBAGE: AtomicPtr<SealedBag> = AtomicPtr::new(ptr::null_mut());
    /// Total deferred destructions ever handed to the collector.
    static RETIRED: AtomicU64 = AtomicU64::new(0);
    /// Total deferred destructions actually executed.
    static RECLAIMED: AtomicU64 = AtomicU64::new(0);
    /// Sealed-bag counter driving amortized collection.
    static SEALS: AtomicU64 = AtomicU64::new(0);

    /// A type-erased deferred destruction.
    struct Deferred {
        ptr: *mut u8,
        drop_fn: unsafe fn(*mut u8),
    }

    // SAFETY: a `Deferred` is only created for heap allocations whose
    // owner has relinquished them (the `defer_destroy` contract), so the
    // collector may run the destructor from any thread.
    unsafe impl Send for Deferred {}

    impl Deferred {
        /// Runs the destructor.
        ///
        /// # Safety
        ///
        /// Must be called at most once, and only when the referent is
        /// unreachable to every pinned thread.
        unsafe fn execute(self) {
            // SAFETY: caller upholds the once-only / unreachable
            // contract above; `drop_fn` was built for exactly this
            // pointer's type in `defer_destroy`.
            unsafe { (self.drop_fn)(self.ptr) };
        }
    }

    /// A bag of garbage sealed at a known global epoch, linked into the
    /// global Treiber stack.
    struct SealedBag {
        epoch: u64,
        items: Vec<Deferred>,
        next: *mut SealedBag,
    }

    /// One record per (concurrently live) thread.
    struct Participant {
        /// `(epoch << 1) | pinned` — the epoch this thread observed at its
        /// most recent pin, plus whether it is currently pinned.
        state: AtomicU64,
        /// Guard nesting depth. Owner-thread only; atomic so the record
        /// itself stays `Sync`.
        pin_depth: AtomicU64,
        /// Total pins, for amortized collection. Owner-thread only.
        pins: AtomicU64,
        /// Bumped each time a new thread claims this record. Guards carry
        /// the generation they were pinned under, so a guard whose drop
        /// outlives its thread's `Handle` (TLS destructor ordering) can
        /// detect that the slot was released — and possibly recycled by
        /// another thread — and must not touch its state.
        generation: AtomicU64,
        /// Whether a live thread currently owns this record.
        in_use: AtomicBool,
        /// Garbage deferred by the owner, not yet sealed. Only the owner
        /// pushes; the lock is uncontended and exists to keep the record
        /// `Sync` across the participant list.
        bag: Mutex<Vec<Deferred>>,
        next: AtomicPtr<Participant>,
    }

    impl Participant {
        fn current_epoch_if_pinned(&self) -> Option<u64> {
            let s = self.state.load(SeqCst);
            (s & 1 == 1).then_some(s >> 1)
        }
    }

    /// Claims a participant record for the current thread: reuses a
    /// released slot if one exists, otherwise pushes a fresh record.
    fn register() -> *const Participant {
        let mut p = PARTICIPANTS.load(SeqCst);
        while !p.is_null() {
            // SAFETY: participant records are never freed.
            let part = unsafe { &*p };
            if !part.in_use.load(SeqCst)
                && part
                    .in_use
                    .compare_exchange(false, true, SeqCst, SeqCst)
                    .is_ok()
            {
                // Previous owner always leaves the record unpinned with an
                // empty bag (see `Handle::drop`), so claiming is just
                // refreshing the published epoch. The generation bump
                // invalidates any of the previous owner's guards that
                // have not been dropped yet.
                part.generation.fetch_add(1, SeqCst);
                part.pin_depth.store(0, SeqCst);
                part.state.store(GLOBAL_EPOCH.load(SeqCst) << 1, SeqCst);
                return p;
            }
            p = part.next.load(SeqCst);
        }
        let fresh = Box::into_raw(Box::new(Participant {
            state: AtomicU64::new(GLOBAL_EPOCH.load(SeqCst) << 1),
            pin_depth: AtomicU64::new(0),
            pins: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            in_use: AtomicBool::new(true),
            bag: Mutex::new(Vec::new()),
            next: AtomicPtr::new(ptr::null_mut()),
        }));
        loop {
            let head = PARTICIPANTS.load(SeqCst);
            // SAFETY: `fresh` is ours until the CAS publishes it.
            unsafe { (*fresh).next.store(head, SeqCst) };
            if PARTICIPANTS
                .compare_exchange(head, fresh, SeqCst, SeqCst)
                .is_ok()
            {
                return fresh;
            }
        }
    }

    /// Thread-local handle owning this thread's participant slot.
    struct Handle {
        participant: *const Participant,
    }

    impl Drop for Handle {
        fn drop(&mut self) {
            // SAFETY: records are never freed.
            let part = unsafe { &*self.participant };
            // Seal whatever garbage is still local so it cannot be
            // stranded in a slot nobody may ever claim again.
            let leftovers = mem::take(&mut *part.bag.lock().unwrap());
            if !leftovers.is_empty() {
                seal(leftovers);
            }
            // A leaked guard could leave the pinned bit set; force it
            // clear so a dead thread can never stall the epoch.
            part.state.store(part.state.load(SeqCst) & !1, SeqCst);
            // Release the slot for recycling only when no guard is
            // outstanding: a guard that outlives this Handle (TLS
            // destructor ordering, or a mem::forget'd guard) keeps
            // `pin_depth` nonzero, and its late drop must never race a
            // new owner's claim — the slot is leaked instead (one small
            // record; the generation check in `Guard::drop` stays as
            // defense in depth).
            if part.pin_depth.load(SeqCst) == 0 {
                part.in_use.store(false, SeqCst);
            }
            // Opportunistically ripen what we just sealed.
            collect();
        }
    }

    thread_local! {
        static HANDLE: Handle = Handle {
            participant: register(),
        };
    }

    /// Seals `items` at the current global epoch and pushes the bag onto
    /// the global garbage stack; periodically triggers collection.
    fn seal(items: Vec<Deferred>) {
        debug_assert!(!items.is_empty());
        let bag = Box::into_raw(Box::new(SealedBag {
            epoch: GLOBAL_EPOCH.load(SeqCst),
            items,
            next: ptr::null_mut(),
        }));
        loop {
            let head = GARBAGE.load(SeqCst);
            // SAFETY: `bag` is ours until the CAS publishes it.
            unsafe { (*bag).next = head };
            if GARBAGE.compare_exchange(head, bag, SeqCst, SeqCst).is_ok() {
                break;
            }
        }
        if SEALS.fetch_add(1, SeqCst).is_multiple_of(SEALS_PER_COLLECT) {
            collect();
        }
    }

    /// Tries to step the global epoch forward once. Fails if any pinned
    /// participant has not yet observed the current epoch (or if another
    /// thread advanced concurrently).
    fn try_advance() -> bool {
        let global = GLOBAL_EPOCH.load(SeqCst);
        let mut p = PARTICIPANTS.load(SeqCst);
        while !p.is_null() {
            // SAFETY: records are never freed.
            let part = unsafe { &*p };
            if part.in_use.load(SeqCst) {
                if let Some(e) = part.current_epoch_if_pinned() {
                    if e != global {
                        return false;
                    }
                }
            }
            p = part.next.load(SeqCst);
        }
        // Participants that registered or pinned after the scan above
        // re-read the global epoch after publishing their state (the
        // repin loop in `pin`), so they can never be left pinned more
        // than one epoch behind a successful advance.
        GLOBAL_EPOCH
            .compare_exchange(global, global + 1, SeqCst, SeqCst)
            .is_ok()
    }

    /// Steals the sealed-bag stack, frees every bag that is two epochs
    /// old, and re-pushes the rest. Returns how many deferred items were
    /// freed.
    fn collect() -> u64 {
        try_advance();
        let mut head = GARBAGE.swap(ptr::null_mut(), SeqCst);
        if head.is_null() {
            return 0;
        }
        let global = GLOBAL_EPOCH.load(SeqCst);
        let mut freed = 0u64;
        let mut keep_head: *mut SealedBag = ptr::null_mut();
        let mut keep_tail: *mut SealedBag = ptr::null_mut();
        while !head.is_null() {
            // SAFETY: the stack hand-off transfers ownership of the chain.
            let mut bag = unsafe { Box::from_raw(head) };
            head = bag.next;
            if bag.epoch + 2 <= global {
                freed += bag.items.len() as u64;
                for item in bag.items.drain(..) {
                    // SAFETY: sealed two epochs ago — no pinned thread can
                    // still observe the referent (crate-level argument).
                    unsafe { item.execute() };
                }
                // `bag` box dropped here.
            } else {
                let raw = Box::into_raw(bag);
                // SAFETY: `raw` is ours until re-pushed below.
                unsafe {
                    (*raw).next = keep_head;
                    if keep_head.is_null() {
                        keep_tail = raw;
                    }
                }
                keep_head = raw;
            }
        }
        if freed > 0 {
            RECLAIMED.fetch_add(freed, SeqCst);
        }
        if !keep_head.is_null() {
            loop {
                let old = GARBAGE.load(SeqCst);
                // SAFETY: the kept chain is exclusively ours; `keep_tail`
                // is its last node.
                unsafe { (*keep_tail).next = old };
                if GARBAGE
                    .compare_exchange(old, keep_head, SeqCst, SeqCst)
                    .is_ok()
                {
                    break;
                }
            }
        }
        freed
    }

    // ---------------------------------------------------------------------
    // Observability.
    // ---------------------------------------------------------------------

    /// A snapshot of the process-wide reclamation counters.
    ///
    /// The epoch domain is global (one collector per process, as with the
    /// real crate's default collector), so these counters aggregate over
    /// every epoch-managed structure in the process.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ReclamationStats {
        /// Deferred destructions handed to the collector so far.
        pub retired: u64,
        /// Deferred destructions executed so far.
        pub reclaimed: u64,
    }

    impl ReclamationStats {
        /// Garbage retired but not yet freed.
        pub fn in_flight(&self) -> u64 {
            self.retired.saturating_sub(self.reclaimed)
        }
    }

    /// Reads the reclamation counters.
    ///
    /// `reclaimed` is loaded before `retired` so that a concurrent
    /// retire+reclaim can never make the snapshot's in-flight count go
    /// negative.
    pub fn reclamation_stats() -> ReclamationStats {
        let reclaimed = RECLAIMED.load(SeqCst);
        let retired = RETIRED.load(SeqCst);
        ReclamationStats { retired, reclaimed }
    }

    /// Test-only: seals every participant's garbage bag and drives
    /// advance/collect rounds until the in-flight count stops improving,
    /// then returns the final counters.
    ///
    /// At quiescence (no thread pinned) this reclaims *everything* and
    /// the returned [`ReclamationStats::in_flight`] is 0. While other
    /// threads hold guards the epoch cannot pass them, so some garbage
    /// may legitimately remain in flight; calling `flush` from inside a
    /// pinned scope likewise cannot advance past the caller's own epoch.
    pub fn flush() -> ReclamationStats {
        // Seal every participant's local bag, not just the caller's:
        // bags are kept across unpins (see `Guard::drop`), so garbage
        // deferred by an idle thread would otherwise never ripen. Sound
        // for a bag owner that is still pinned at epoch ℓ: the seal tag
        // is ≥ ℓ, and the epoch cannot reach tag+2 until that owner
        // unpins.
        let mut p = PARTICIPANTS.load(SeqCst);
        while !p.is_null() {
            // SAFETY: records are never freed.
            let part = unsafe { &*p };
            if part.in_use.load(SeqCst) {
                let local = mem::take(&mut *part.bag.lock().unwrap());
                if !local.is_empty() {
                    seal(local);
                }
            }
            p = part.next.load(SeqCst);
        }
        let mut stalled = 0u32;
        loop {
            let advanced = try_advance();
            let freed = collect();
            if reclamation_stats().in_flight() == 0 {
                break;
            }
            if advanced || freed > 0 {
                stalled = 0;
            } else {
                stalled += 1;
                if stalled >= FLUSH_STALL_ROUNDS {
                    break;
                }
            }
        }
        reclamation_stats()
    }

    // ---------------------------------------------------------------------
    // Guards and pinning.
    // ---------------------------------------------------------------------

    /// A pinned-epoch guard: while any guard for the thread is live, the
    /// global epoch can advance at most once past the thread's published
    /// epoch, so nothing the thread can still reach is freed.
    ///
    /// Guards must not be stored in thread-local storage: a guard whose
    /// destructor runs after the thread's epoch handle is torn down no
    /// longer pins anything (the handle's teardown force-unpins so a dead
    /// thread can never stall the epoch).
    #[derive(Debug)]
    pub struct Guard {
        /// Owning participant; null for the unprotected guard.
        local: *const Participant,
        /// The participant generation this guard was pinned under; a
        /// mismatch at drop means the slot was released (and possibly
        /// recycled by another thread) first.
        generation: u64,
    }

    /// Pins the current thread, returning a guard.
    pub fn pin() -> Guard {
        HANDLE.with(|h| {
            // SAFETY: records are never freed.
            let part = unsafe { &*h.participant };
            let depth = part.pin_depth.load(SeqCst);
            part.pin_depth.store(depth + 1, SeqCst);
            if depth == 0 {
                // Publish (epoch, pinned) and re-read until the published
                // epoch matches the global: an advance that raced our
                // store is thereby observed, keeping every *visible*
                // pinned epoch within one step of the global.
                let mut e = GLOBAL_EPOCH.load(SeqCst);
                loop {
                    part.state.store((e << 1) | 1, SeqCst);
                    let now = GLOBAL_EPOCH.load(SeqCst);
                    if now == e {
                        break;
                    }
                    e = now;
                }
                let pins = part.pins.load(Ordering::Relaxed).wrapping_add(1);
                part.pins.store(pins, Ordering::Relaxed);
                if pins.is_multiple_of(PINS_PER_COLLECT) {
                    // Freed bags are ≥ 2 epochs old, which our fresh pin
                    // (current epoch) cannot be reaching into.
                    collect();
                }
            }
            Guard {
                local: h.participant,
                generation: part.generation.load(SeqCst),
            }
        })
    }

    /// Returns a guard usable without pinning.
    ///
    /// # Safety
    ///
    /// The caller must guarantee that no other thread can concurrently
    /// access the data structure (e.g. inside `Drop` with `&mut self`).
    pub unsafe fn unprotected() -> &'static Guard {
        struct SyncGuard(Guard);
        // SAFETY: the unprotected guard carries no participant; sharing
        // it across threads is harmless (its operations act immediately).
        unsafe impl Sync for SyncGuard {}
        static UNPROTECTED: SyncGuard = SyncGuard(Guard {
            local: ptr::null(),
            generation: 0,
        });
        &UNPROTECTED.0
    }

    impl Guard {
        /// Schedules `ptr`'s referent for destruction once no pinned
        /// thread can still observe it. On the [`unprotected`] guard the
        /// destruction runs immediately.
        ///
        /// # Safety
        ///
        /// `ptr` must be non-null, must have been allocated via [`Owned`]
        /// / [`Atomic::new`], must be unreachable to threads that pin
        /// after this call, and must not be deferred twice.
        pub unsafe fn defer_destroy<T>(&self, ptr: Shared<'_, T>) {
            unsafe fn dropper<T>(p: *mut u8) {
                // SAFETY: `p` is the erased `Box<T>` allocation captured
                // below; the collector calls each `Deferred` once.
                drop(unsafe { Box::from_raw(p as *mut T) });
            }
            debug_assert!(!ptr.is_null(), "defer_destroy of null");
            let deferred = Deferred {
                ptr: ptr.ptr as *mut u8,
                drop_fn: dropper::<T>,
            };
            RETIRED.fetch_add(1, SeqCst);
            if self.local.is_null() {
                // SAFETY (unprotected guard): the caller vouches nobody
                // else can reach the referent; destroy eagerly.
                unsafe { deferred.execute() };
                RECLAIMED.fetch_add(1, SeqCst);
                return;
            }
            // SAFETY: participant records are never freed, so the
            // non-null `local` pointer is always live.
            let part = unsafe { &*self.local };
            let mut bag = part.bag.lock().unwrap();
            bag.push(deferred);
            if bag.len() >= BAG_CAPACITY {
                let items = mem::take(&mut *bag);
                drop(bag);
                seal(items);
            }
        }
    }

    impl Drop for Guard {
        fn drop(&mut self) {
            if self.local.is_null() {
                return;
            }
            // SAFETY: records are never freed; guards are `!Send`, so this
            // runs on the owning thread.
            let part = unsafe { &*self.local };
            if part.generation.load(SeqCst) != self.generation {
                // The slot was released (thread teardown ran first) and
                // recycled; the new owner's state is not ours to touch.
                return;
            }
            let depth = part.pin_depth.load(SeqCst) - 1;
            part.pin_depth.store(depth, SeqCst);
            if depth == 0 {
                part.state.store(part.state.load(SeqCst) & !1, SeqCst);
            }
            // Garbage stays in the local bag across unpins (sealed when
            // the bag fills, at thread exit, or by `flush`): the write
            // path never allocates a one-item bag per operation, and the
            // in-flight total stays bounded by bag capacity × threads.
        }
    }

    // ---------------------------------------------------------------------
    // Pointer types (unchanged API surface).
    // ---------------------------------------------------------------------

    /// A heap-owned pointer, analogous to `Box`.
    #[derive(Debug)]
    pub struct Owned<T> {
        inner: Box<T>,
    }

    impl<T> Owned<T> {
        /// Allocates `value` on the heap.
        pub fn new(value: T) -> Self {
            Owned {
                inner: Box::new(value),
            }
        }

        /// Converts into a [`Shared`] tied to `guard`'s lifetime,
        /// relinquishing ownership.
        pub fn into_shared<'g>(self, _guard: &'g Guard) -> Shared<'g, T> {
            Shared {
                ptr: Box::into_raw(self.inner),
                _marker: PhantomData,
            }
        }
    }

    /// A shared pointer valid for the guard lifetime `'g`. May be null.
    /// (The real crate also packs tag bits; nothing here uses them.)
    pub struct Shared<'g, T> {
        ptr: *mut T,
        _marker: PhantomData<&'g T>,
    }

    impl<T> Clone for Shared<'_, T> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<T> Copy for Shared<'_, T> {}

    impl<T> PartialEq for Shared<'_, T> {
        fn eq(&self, other: &Self) -> bool {
            std::ptr::eq(self.ptr, other.ptr)
        }
    }

    impl<T> Eq for Shared<'_, T> {}

    impl<T> std::fmt::Debug for Shared<'_, T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Shared({:p})", self.ptr)
        }
    }

    impl<'g, T> Shared<'g, T> {
        /// The null pointer.
        pub fn null() -> Self {
            Shared {
                ptr: std::ptr::null_mut(),
                _marker: PhantomData,
            }
        }

        /// Whether the pointer is null.
        pub fn is_null(&self) -> bool {
            self.ptr.is_null()
        }

        /// Dereferences, returning `None` for null.
        ///
        /// # Safety
        ///
        /// Non-null pointers must reference a live allocation for `'g`.
        pub unsafe fn as_ref(&self) -> Option<&'g T> {
            // SAFETY: caller guarantees liveness for `'g` when non-null.
            unsafe { self.ptr.as_ref() }
        }

        /// Dereferences a known non-null pointer.
        ///
        /// # Safety
        ///
        /// The pointer must be non-null and reference a live allocation
        /// for `'g`.
        pub unsafe fn deref(&self) -> &'g T {
            // SAFETY: caller guarantees non-null and liveness for `'g`.
            unsafe { &*self.ptr }
        }

        /// Reclaims ownership of the allocation.
        ///
        /// # Safety
        ///
        /// The pointer must be non-null, uniquely reachable, and never
        /// dereferenced again.
        pub unsafe fn into_owned(self) -> Owned<T> {
            Owned {
                // SAFETY: caller guarantees unique reachability, so
                // re-boxing the allocation cannot alias.
                inner: unsafe { Box::from_raw(self.ptr) },
            }
        }
    }

    /// Types convertible into a raw shared pointer (for [`Atomic::store`]
    /// and [`Atomic::swap`]).
    pub trait Pointer<T> {
        /// Consumes `self`, yielding the raw pointer.
        fn into_ptr(self) -> *mut T;
    }

    impl<T> Pointer<T> for Shared<'_, T> {
        fn into_ptr(self) -> *mut T {
            self.ptr
        }
    }

    impl<T> Pointer<T> for Owned<T> {
        fn into_ptr(self) -> *mut T {
            Box::into_raw(self.inner)
        }
    }

    /// An atomic nullable pointer to `T`.
    #[derive(Debug)]
    pub struct Atomic<T> {
        ptr: AtomicPtr<T>,
    }

    impl<T> Atomic<T> {
        /// An atomic null pointer.
        pub fn null() -> Self {
            Atomic {
                ptr: AtomicPtr::new(std::ptr::null_mut()),
            }
        }

        /// Allocates `value` and points at it.
        pub fn new(value: T) -> Self {
            Atomic {
                ptr: AtomicPtr::new(Box::into_raw(Box::new(value))),
            }
        }

        /// Atomically loads the pointer.
        pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
            Shared {
                ptr: self.ptr.load(ord),
                _marker: PhantomData,
            }
        }

        /// Atomically stores `new`.
        pub fn store<P: Pointer<T>>(&self, new: P, ord: Ordering) {
            self.ptr.store(new.into_ptr(), ord);
        }

        /// Atomically swaps in `new`, returning the previous pointer.
        pub fn swap<'g, P: Pointer<T>>(
            &self,
            new: P,
            ord: Ordering,
            _guard: &'g Guard,
        ) -> Shared<'g, T> {
            Shared {
                ptr: self.ptr.swap(new.into_ptr(), ord),
                _marker: PhantomData,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::epoch::{self, Atomic, Owned, Shared};
    use std::sync::atomic::Ordering::SeqCst;
    use std::sync::{Mutex, MutexGuard};

    /// The epoch domain is process-global, so tests that pin or assert on
    /// the reclamation counters must not interleave with each other.
    fn serialize() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn atomic_round_trip() {
        let _serial = serialize();
        let guard = epoch::pin();
        let a: Atomic<i32> = Atomic::null();
        assert!(a.load(SeqCst, &guard).is_null());
        let s = Owned::new(7).into_shared(&guard);
        a.store(s, SeqCst);
        let got = a.load(SeqCst, &guard);
        assert_eq!(unsafe { got.as_ref() }, Some(&7));
        let old = a.swap(Shared::null(), SeqCst, &guard);
        assert_eq!(old, got);
        assert_eq!(unsafe { *old.deref() }, 7);
        drop(unsafe { old.into_owned() }); // reclaim manually
    }

    #[test]
    fn deferred_garbage_is_reclaimed_at_quiescence() {
        let _serial = serialize();
        let before = epoch::reclamation_stats();
        {
            let guard = epoch::pin();
            for i in 0..200 {
                let s = Owned::new(vec![i; 8]).into_shared(&guard);
                unsafe { guard.defer_destroy(s) };
            }
        }
        let after = epoch::flush();
        assert!(after.retired >= before.retired + 200);
        assert!(
            after.reclaimed >= before.reclaimed + 200,
            "flush at quiescence reclaims everything deferred: {after:?}"
        );
    }

    #[test]
    fn pinned_guard_blocks_reclamation() {
        let _serial = serialize();
        let _outer = epoch::pin(); // keep this thread pinned
        let a: Atomic<String> = Atomic::new("alive".to_owned());
        let held = a.load(SeqCst, &_outer);
        let swapped = a.swap(Owned::new("next".to_owned()), SeqCst, &_outer);
        unsafe { _outer.defer_destroy(swapped) };
        // Flushing from inside the pin cannot advance past our epoch, so
        // the deferred string must still be readable.
        epoch::flush();
        assert_eq!(unsafe { held.deref() }, "alive");
        // Teardown: free the replacement eagerly.
        unsafe {
            let g = epoch::unprotected();
            let cur = a.load(SeqCst, g);
            g.defer_destroy(cur);
        }
    }

    #[test]
    fn unprotected_defer_destroys_immediately() {
        let _serial = serialize();
        let before = epoch::reclamation_stats();
        unsafe {
            let g = epoch::unprotected();
            let s = Owned::new(1234u64).into_shared(g);
            g.defer_destroy(s);
        }
        let after = epoch::reclamation_stats();
        assert!(after.reclaimed > before.reclaimed);
    }
}
