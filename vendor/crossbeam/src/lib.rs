//! Offline stand-in for the subset of `crossbeam` this workspace uses
//! (the `epoch` module consumed by the concurrent skip list).
//!
//! The real crate provides epoch-based memory reclamation: retired nodes
//! are destroyed once no pinned thread can still observe them. This
//! stand-in keeps the exact same API but *defers destruction forever*
//! (i.e. leaks retired nodes). That is a sound instantiation of the epoch
//! contract — deferral is allowed to be unbounded — at the cost of memory
//! growth proportional to the number of removals while the container is
//! alive. `Drop`-time teardown via [`epoch::unprotected`] still frees the
//! *linked* structure. Replacing this with real epoch reclamation is
//! tracked as a roadmap item.

/// Epoch-based reclamation API (leaking stand-in; see crate docs).
pub mod epoch {
    use std::marker::PhantomData;
    use std::sync::atomic::{AtomicPtr, Ordering};

    /// A pinned-epoch guard. In this stand-in it carries no state: pinning
    /// never blocks reclamation because reclamation never happens.
    #[derive(Debug)]
    pub struct Guard {
        _priv: (),
    }

    static UNPROTECTED: Guard = Guard { _priv: () };

    /// Pins the current thread, returning a guard.
    pub fn pin() -> Guard {
        Guard { _priv: () }
    }

    /// Returns a guard usable without pinning.
    ///
    /// # Safety
    ///
    /// The caller must guarantee that no other thread can concurrently
    /// access the data structure (e.g. inside `Drop` with `&mut self`).
    pub unsafe fn unprotected() -> &'static Guard {
        &UNPROTECTED
    }

    impl Guard {
        /// Schedules `ptr`'s referent for destruction once all pinned
        /// threads have moved on. This stand-in leaks it instead, which is
        /// a legal (if wasteful) deferral.
        ///
        /// # Safety
        ///
        /// `ptr` must be unreachable to threads that pin after this call.
        pub unsafe fn defer_destroy<T>(&self, ptr: Shared<'_, T>) {
            // Intentionally leaked; see the crate-level documentation.
            let _ = ptr;
        }
    }

    /// A heap-owned pointer, analogous to `Box`.
    #[derive(Debug)]
    pub struct Owned<T> {
        inner: Box<T>,
    }

    impl<T> Owned<T> {
        /// Allocates `value` on the heap.
        pub fn new(value: T) -> Self {
            Owned {
                inner: Box::new(value),
            }
        }

        /// Converts into a [`Shared`] tied to `guard`'s lifetime,
        /// relinquishing ownership.
        pub fn into_shared<'g>(self, _guard: &'g Guard) -> Shared<'g, T> {
            Shared {
                ptr: Box::into_raw(self.inner),
                _marker: PhantomData,
            }
        }
    }

    /// A shared pointer valid for the guard lifetime `'g`. May be null.
    /// (The real crate also packs tag bits; nothing here uses them.)
    pub struct Shared<'g, T> {
        ptr: *mut T,
        _marker: PhantomData<&'g T>,
    }

    impl<T> Clone for Shared<'_, T> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<T> Copy for Shared<'_, T> {}

    impl<T> PartialEq for Shared<'_, T> {
        fn eq(&self, other: &Self) -> bool {
            std::ptr::eq(self.ptr, other.ptr)
        }
    }

    impl<T> Eq for Shared<'_, T> {}

    impl<T> std::fmt::Debug for Shared<'_, T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Shared({:p})", self.ptr)
        }
    }

    impl<'g, T> Shared<'g, T> {
        /// The null pointer.
        pub fn null() -> Self {
            Shared {
                ptr: std::ptr::null_mut(),
                _marker: PhantomData,
            }
        }

        /// Whether the pointer is null.
        pub fn is_null(&self) -> bool {
            self.ptr.is_null()
        }

        /// Dereferences, returning `None` for null.
        ///
        /// # Safety
        ///
        /// Non-null pointers must reference a live allocation for `'g`.
        pub unsafe fn as_ref(&self) -> Option<&'g T> {
            self.ptr.as_ref()
        }

        /// Dereferences a known non-null pointer.
        ///
        /// # Safety
        ///
        /// The pointer must be non-null and reference a live allocation
        /// for `'g`.
        pub unsafe fn deref(&self) -> &'g T {
            &*self.ptr
        }

        /// Reclaims ownership of the allocation.
        ///
        /// # Safety
        ///
        /// The pointer must be non-null, uniquely reachable, and never
        /// dereferenced again.
        pub unsafe fn into_owned(self) -> Owned<T> {
            Owned {
                inner: Box::from_raw(self.ptr),
            }
        }
    }

    /// Types convertible into a raw shared pointer (for [`Atomic::store`]
    /// and [`Atomic::swap`]).
    pub trait Pointer<T> {
        /// Consumes `self`, yielding the raw pointer.
        fn into_ptr(self) -> *mut T;
    }

    impl<T> Pointer<T> for Shared<'_, T> {
        fn into_ptr(self) -> *mut T {
            self.ptr
        }
    }

    impl<T> Pointer<T> for Owned<T> {
        fn into_ptr(self) -> *mut T {
            Box::into_raw(self.inner)
        }
    }

    /// An atomic nullable pointer to `T`.
    #[derive(Debug)]
    pub struct Atomic<T> {
        ptr: AtomicPtr<T>,
    }

    impl<T> Atomic<T> {
        /// An atomic null pointer.
        pub fn null() -> Self {
            Atomic {
                ptr: AtomicPtr::new(std::ptr::null_mut()),
            }
        }

        /// Allocates `value` and points at it.
        pub fn new(value: T) -> Self {
            Atomic {
                ptr: AtomicPtr::new(Box::into_raw(Box::new(value))),
            }
        }

        /// Atomically loads the pointer.
        pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
            Shared {
                ptr: self.ptr.load(ord),
                _marker: PhantomData,
            }
        }

        /// Atomically stores `new`.
        pub fn store<P: Pointer<T>>(&self, new: P, ord: Ordering) {
            self.ptr.store(new.into_ptr(), ord);
        }

        /// Atomically swaps in `new`, returning the previous pointer.
        pub fn swap<'g, P: Pointer<T>>(
            &self,
            new: P,
            ord: Ordering,
            _guard: &'g Guard,
        ) -> Shared<'g, T> {
            Shared {
                ptr: self.ptr.swap(new.into_ptr(), ord),
                _marker: PhantomData,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::epoch::{self, Atomic, Owned, Shared};
    use std::sync::atomic::Ordering::SeqCst;

    #[test]
    fn atomic_round_trip() {
        let guard = epoch::pin();
        let a: Atomic<i32> = Atomic::null();
        assert!(a.load(SeqCst, &guard).is_null());
        let s = Owned::new(7).into_shared(&guard);
        a.store(s, SeqCst);
        let got = a.load(SeqCst, &guard);
        assert_eq!(unsafe { got.as_ref() }, Some(&7));
        let old = a.swap(Shared::null(), SeqCst, &guard);
        assert_eq!(old, got);
        assert_eq!(unsafe { *old.deref() }, 7);
        drop(unsafe { old.into_owned() }); // reclaim manually
    }
}
