//! Offline stand-in for the subset of `parking_lot` this workspace uses.
//!
//! The build environment has no network access to crates.io, so this
//! vendored crate re-implements the needed API surface on top of `std`
//! primitives:
//!
//! * [`Mutex`] / [`RwLock`] — non-poisoning wrappers over the `std`
//!   equivalents (a poisoned `std` lock panics here, matching
//!   `parking_lot`'s behavior of not propagating poison);
//! * [`RawRwLock`] — a raw (guard-free) reader-writer lock built from a
//!   `Mutex<state>` + `Condvar`, exposing the `lock_api::RawRwLock`
//!   trait surface (`lock_shared`, `try_lock_exclusive`, ...).
//!
//! Fairness and performance niceties of the real crate (eventual fairness,
//! word-sized state, parking) are intentionally out of scope: correctness
//! and API compatibility only.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{Condvar, Mutex as StdMutex};

/// The `lock_api` trait surface used by `relc-locks`.
pub mod lock_api {
    /// A raw reader-writer lock: guard-free acquire/release, callable from
    /// different scopes (the caller tracks ownership).
    pub trait RawRwLock {
        /// An unlocked lock, usable in `const`/static initializers.
        #[allow(clippy::declare_interior_mutable_const)]
        const INIT: Self;

        /// Acquires a shared lock, blocking until available.
        fn lock_shared(&self);
        /// Attempts to acquire a shared lock without blocking.
        fn try_lock_shared(&self) -> bool;
        /// Releases a shared lock.
        ///
        /// # Safety
        ///
        /// The current context must hold a shared lock.
        unsafe fn unlock_shared(&self);
        /// Acquires an exclusive lock, blocking until available.
        fn lock_exclusive(&self);
        /// Attempts to acquire an exclusive lock without blocking.
        fn try_lock_exclusive(&self) -> bool;
        /// Releases an exclusive lock.
        ///
        /// # Safety
        ///
        /// The current context must hold the exclusive lock.
        unsafe fn unlock_exclusive(&self);
    }
}

/// Reader-writer lock state: `0` = free, `u32::MAX` = exclusively held,
/// otherwise the number of shared holders.
struct RawState {
    state: StdMutex<u32>,
    cond: Condvar,
}

const EXCLUSIVE: u32 = u32::MAX;

/// A raw reader-writer lock (no guards; the caller pairs acquisitions with
/// releases, as the two-phase engine does).
pub struct RawRwLock {
    inner: RawState,
}

impl lock_api::RawRwLock for RawRwLock {
    #[allow(clippy::declare_interior_mutable_const)]
    const INIT: RawRwLock = RawRwLock {
        inner: RawState {
            state: StdMutex::new(0),
            cond: Condvar::new(),
        },
    };

    fn lock_shared(&self) {
        let mut s = self.inner.state.lock().expect("raw rwlock state");
        while *s == EXCLUSIVE {
            s = self.inner.cond.wait(s).expect("raw rwlock state");
        }
        *s += 1;
    }

    fn try_lock_shared(&self) -> bool {
        let mut s = self.inner.state.lock().expect("raw rwlock state");
        if *s == EXCLUSIVE {
            false
        } else {
            *s += 1;
            true
        }
    }

    unsafe fn unlock_shared(&self) {
        let mut s = self.inner.state.lock().expect("raw rwlock state");
        debug_assert!(*s != EXCLUSIVE && *s > 0, "unlock_shared without holders");
        *s -= 1;
        if *s == 0 {
            self.inner.cond.notify_all();
        }
    }

    fn lock_exclusive(&self) {
        let mut s = self.inner.state.lock().expect("raw rwlock state");
        while *s != 0 {
            s = self.inner.cond.wait(s).expect("raw rwlock state");
        }
        *s = EXCLUSIVE;
    }

    fn try_lock_exclusive(&self) -> bool {
        let mut s = self.inner.state.lock().expect("raw rwlock state");
        if *s != 0 {
            false
        } else {
            *s = EXCLUSIVE;
            true
        }
    }

    unsafe fn unlock_exclusive(&self) {
        let mut s = self.inner.state.lock().expect("raw rwlock state");
        debug_assert!(*s == EXCLUSIVE, "unlock_exclusive without the writer");
        *s = 0;
        self.inner.cond.notify_all();
    }
}

impl fmt::Debug for RawRwLock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RawRwLock")
    }
}

/// A non-poisoning mutex.
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// Guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A non-poisoning reader-writer lock.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared lock, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires the exclusive lock, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::lock_api::RawRwLock as _;
    use super::*;

    #[test]
    fn raw_rwlock_modes() {
        let l = RawRwLock::INIT;
        assert!(l.try_lock_shared());
        assert!(l.try_lock_shared());
        assert!(!l.try_lock_exclusive());
        unsafe { l.unlock_shared() };
        unsafe { l.unlock_shared() };
        assert!(l.try_lock_exclusive());
        assert!(!l.try_lock_shared());
        unsafe { l.unlock_exclusive() };
        l.lock_shared();
        unsafe { l.unlock_shared() };
    }

    #[test]
    fn mutex_and_rwlock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(vec![1]);
        rw.write().push(2);
        assert_eq!(rw.read().len(), 2);
    }
}
