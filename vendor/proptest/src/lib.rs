//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no crates.io access, so this vendored crate
//! re-implements the pieces the test suite needs: the [`Strategy`] trait
//! with `prop_map`/`prop_perturb`, range/tuple/`Just`/`any` strategies,
//! the [`collection`] and [`option`] combinators, weighted
//! [`prop_oneof!`], and the [`proptest!`] test macro with
//! `prop_assert*`-style assertions.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its deterministic case
//!   index (re-runnable, since generation is seeded by test name + case
//!   number) instead of a minimized input.
//! * **No persistence files**, forks, or timeouts.
//!
//! Those gaps only affect failure *diagnostics*, not what the properties
//! verify.

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`vec`, `btree_map`).
pub mod collection {
    use std::collections::BTreeMap;
    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s of `element` with length drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.usize_in(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap`s; see [`btree_map`].
    #[derive(Clone)]
    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: Range<usize>,
    }

    /// Generates `BTreeMap`s with up to `size.end - 1` entries (duplicate
    /// generated keys collapse, as in the real crate).
    pub fn btree_map<K, V>(keys: K, values: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy { keys, values, size }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.usize_in(self.size.clone());
            let mut out = BTreeMap::new();
            for _ in 0..n {
                out.insert(self.keys.generate(rng), self.values.generate(rng));
            }
            out
        }
    }
}

/// Option strategies (`of`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option`s; see [`of`].
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Some(inner)` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}
