//! The [`Strategy`] trait and the primitive strategies.

use std::marker::PhantomData;
use std::ops::Range;
use std::sync::Arc;

use crate::test_runner::TestRng;

/// A generator of test values.
///
/// Unlike the real crate there is no value-tree/shrinking layer: a
/// strategy maps an RNG state straight to a value.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { inner: self, f }
    }

    /// Maps generated values through `f`, which also receives a private
    /// RNG fork (the real crate's signature).
    fn prop_perturb<U, F>(self, f: F) -> Perturb<Self, F>
    where
        F: Fn(Self::Value, TestRng) -> U + Clone,
    {
        Perturb { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy(Arc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_perturb`].
#[derive(Clone)]
pub struct Perturb<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Perturb<S, F>
where
    S: Strategy,
    F: Fn(S::Value, TestRng) -> U + Clone,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        let v = self.inner.generate(rng);
        let fork = rng.fork();
        (self.f)(v, fork)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union of boxed strategies (built by [`prop_oneof!`]).
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(
            arms.iter().any(|(w, _)| *w > 0),
            "prop_oneof! needs at least one positive weight"
        );
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.next_u64() % total;
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum checked in Union::new")
    }
}

macro_rules! int_strategy {
    ($($t:ty => $via:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_strategy!(
    i8 => i128, i16 => i128, i32 => i128, i64 => i128,
    u8 => u128, u16 => u128, u32 => u128, u64 => u128,
    usize => u128, isize => i128
);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical full-range strategy (the real crate's
/// `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws a uniform value over the type's full range.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// See [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (full-range for integers).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Weighted choice between strategies: `prop_oneof![a, b]` or
/// `prop_oneof![3 => a, 1 => b]`. All arms must yield the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
