//! The deterministic case runner behind the [`proptest!`] macro.
//!
//! [`proptest!`]: crate::proptest

use std::fmt;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Runner configuration (only `cases` is honored by this stand-in).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

/// RNG algorithm selector (single-algorithm in this stand-in; kept for
/// source compatibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RngAlgorithm {
    /// The xoshiro256** generator from the vendored `rand`.
    #[default]
    XorShiftLike,
}

/// The generator handed to strategies (and to `prop_perturb` closures).
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// A generator seeded deterministically from `seed`.
    pub fn seeded(seed: u64) -> Self {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniform value of `T` (mirrors `rand`'s `random`).
    pub fn random<T: rand::Standard>(&mut self) -> T {
        T::sample(&mut self.inner)
    }

    /// A uniform index in `range`.
    pub fn usize_in(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty size range");
        range.start + (self.next_u64() as usize) % (range.end - range.start)
    }

    /// An independent generator split off from this one.
    pub fn fork(&mut self) -> TestRng {
        TestRng::seeded(self.next_u64())
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        TestRng::next_u64(self)
    }
}

/// A failed property case (produced by `prop_assert*` or
/// [`TestCaseError::fail`]).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Fails the case with `reason`.
    pub fn fail(reason: impl fmt::Display) -> Self {
        TestCaseError {
            message: reason.to_string(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

fn fnv(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `body` for each case with a per-case deterministic RNG. Panics on
/// the first failing case, reporting its index and seed (generation is a
/// pure function of the seed, so failures replay exactly).
pub fn run(
    config: &ProptestConfig,
    test_name: &str,
    mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let base = fnv(test_name);
    for case in 0..config.cases {
        let seed = base ^ (u64::from(case)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = TestRng::seeded(seed);
        if let Err(e) = body(&mut rng) {
            panic!(
                "property `{test_name}` failed at case {case}/{} (seed {seed:#x}): {e}\n\
                 (offline proptest stand-in: no shrinking; the case replays \
                 deterministically from the seed)",
                config.cases
            );
        }
    }
}

/// Runs one or more property test functions:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0i64..10, ys in proptest::collection::vec(0i64..4, 0..8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        );
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                let __out: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        { $body }
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                __out
            });
        }
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`", *l, *r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}", *l, *r, format!($($fmt)+)
        );
    }};
}

/// Fails the current case unless the operands differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", *l, *r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_in_bounds(x in 3i64..9, y in 0u8..2) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 2, "y = {}", y);
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec(prop_oneof![2 => 0i64..5, 1 => 10i64..12], 0..20),
            o in crate::option::of(any::<i64>()),
            t in (0i64..4, 1u32..3).prop_map(|(a, b)| (a, b)),
        ) {
            prop_assert!(v.iter().all(|x| (0..5).contains(x) || (10..12).contains(x)));
            if let Some(x) = o {
                prop_assert_ne!(x, x.wrapping_add(1)); // tautology; exercises the macro
            }
            prop_assert!(t.1 >= 1 && t.1 < 3);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = (0i64..100, crate::collection::vec(0i64..10, 1..5));
        let mut r1 = crate::test_runner::TestRng::seeded(9);
        let mut r2 = crate::test_runner::TestRng::seeded(9);
        for _ in 0..50 {
            assert_eq!(
                Strategy::generate(&s, &mut r1),
                Strategy::generate(&s, &mut r2)
            );
        }
    }
}
